package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"clydesdale/internal/cluster"
	"clydesdale/internal/core"
	"clydesdale/internal/expr"
	"clydesdale/internal/hdfs"
	"clydesdale/internal/mr"
	"clydesdale/internal/obs"
	"clydesdale/internal/records"
	"clydesdale/internal/refexec"
	"clydesdale/internal/results"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

// ServeBenchConfig shapes the open-loop serving benchmark: a mixed-tenant
// workload of interactive dashboards (flight-1, one dimension) and
// reporting refreshes (flight-4, all four dimensions) fired at the session
// on a Poisson arrival process that does not wait for completions.
type ServeBenchConfig struct {
	FactRows int64   `json:"fact_rows"`
	DimScale float64 `json:"dim_scale"`
	Workers  int     `json:"workers"`
	// Seed fixes the arrival schedule (offsets, tenants, query mix), so
	// every policy pass replays the identical workload.
	Seed uint64 `json:"seed"`
	// Duration is the open-loop arrival window; the run then drains.
	Duration time.Duration `json:"duration_ns"`
	// Rate is the mean arrival rate (events per second). A reporting event
	// submits ReportingBurst queries at once (a dashboard refresh), so the
	// query rate is higher than the event rate.
	Rate float64 `json:"rate_per_sec"`
	// Tenants is the interactive tenant population; each arrival draws one.
	Tenants int `json:"tenants"`
	// ReportingTenants is the (small) pool of heavy reporting tenants.
	ReportingTenants int `json:"reporting_tenants"`
	// ReportingShare is the probability an arrival is a reporting burst.
	ReportingShare float64 `json:"reporting_share"`
	// ReportingBurst is how many flight-4 queries one reporting event
	// submits back-to-back.
	ReportingBurst int `json:"reporting_burst"`
	// MaxConcurrent and QueueDepth configure the session under test.
	MaxConcurrent int `json:"max_concurrent"`
	QueueDepth    int `json:"queue_depth"`
	// InteractiveSLO / ReportingSLO are the per-class latency targets the
	// attainment figures are computed against.
	InteractiveSLO time.Duration `json:"interactive_slo_ns"`
	ReportingSLO   time.Duration `json:"reporting_slo_ns"`
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.FactRows <= 0 {
		// Large enough that a flight-4 reporting query runs tens of ms while
		// zone-map pruning keeps flight-1 dashboards at a few ms — the
		// spread that makes head-of-line blocking measurable above run noise.
		c.FactRows = 500_000
	}
	if c.DimScale <= 0 {
		c.DimScale = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Duration <= 0 {
		c.Duration = 12 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 10
	}
	if c.Tenants <= 0 {
		c.Tenants = 2000
	}
	if c.ReportingTenants <= 0 {
		c.ReportingTenants = 4
	}
	if c.ReportingShare <= 0 {
		c.ReportingShare = 0.10
	}
	if c.ReportingBurst <= 0 {
		c.ReportingBurst = 8
	}
	if c.MaxConcurrent <= 0 {
		// One executing query maximizes head-of-line blocking — the regime
		// the admission policies differ in — while keeping the offered load
		// under saturation.
		c.MaxConcurrent = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.InteractiveSLO <= 0 {
		c.InteractiveSLO = 250 * time.Millisecond
	}
	if c.ReportingSLO <= 0 {
		c.ReportingSLO = 2 * time.Second
	}
	return c
}

// ServeClassStats is one query class's outcome under one admission policy.
// Quantiles are read from the session's serve.slo.<class> histograms (the
// same numbers a /slo scrape reports); attainment and shed rate come from
// the harness's own per-query bookkeeping.
type ServeClassStats struct {
	Class         string  `json:"class"`
	Offered       int64   `json:"offered"`
	Completed     int64   `json:"completed"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	MaxNs         int64   `json:"max_ns"`
	ThroughputQPS float64 `json:"throughput_qps"`
	SLOTargetNs   int64   `json:"slo_target_ns"`
	SLOAttainment float64 `json:"slo_attainment"`
	ShedRate      float64 `json:"shed_rate"`
}

// ServePassStats is one full replay of the workload under one policy.
type ServePassStats struct {
	// Policy is "fifo" (tenant identity stripped: the single default-tenant
	// queue is exactly the old global FIFO), "fairshare" (per-tenant DRR),
	// or "fairshare+cache" (DRR plus the fingerprint result cache).
	Policy         string            `json:"policy"`
	Classes        []ServeClassStats `json:"classes"`
	AdmitWaitP50Ns int64             `json:"admit_wait_p50_ns"`
	AdmitWaitP99Ns int64             `json:"admit_wait_p99_ns"`
	AdmitWaitMaxNs int64             `json:"admit_wait_max_ns"`
	WallNs         int64             `json:"wall_ns"`
	TotalQPS       float64           `json:"total_qps"`
	MRJobs         int64             `json:"mr_jobs"`
	ResultHits     int64             `json:"result_cache_hits"`
	ResultSubsumed int64             `json:"result_cache_subsumption_hits"`
}

// ResultCachePhase is the dedicated cold/warm result-cache measurement: the
// warm pass must serve every repeat (and one strictly-narrower subsumption
// probe) without submitting a single MapReduce job.
type ResultCachePhase struct {
	ColdNs          int64 `json:"cold_ns"`
	WarmNs          int64 `json:"warm_ns"`
	ColdJobs        int64 `json:"cold_jobs"`
	WarmJobs        int64 `json:"warm_jobs"`
	WarmHits        int64 `json:"warm_hits"`
	SubsumptionHits int64 `json:"subsumption_hits"`
	// Equivalent reports that every cache-served result (warm repeats and
	// the subsumption probe) matched the in-memory reference executor.
	Equivalent bool `json:"equivalent"`
}

// ServeBenchResult is the payload of BENCH_serve.json.
type ServeBenchResult struct {
	Config ServeBenchConfig `json:"config"`
	Passes []ServePassStats `json:"passes"`
	Cache  ResultCachePhase `json:"result_cache"`
}

// WriteJSON writes the result as indented JSON.
func (r *ServeBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

const (
	classInteractive = "interactive"
	classReporting   = "reporting"
)

// sloClassOf maps the harness's workload classes onto the serve layer's SLO
// classes (flight-1 / flight-4 histograms).
func sloClassOf(class string) string {
	if class == classInteractive {
		return serve.QueryClass("Q1.1")
	}
	return serve.QueryClass("Q4.1")
}

// arrival is one scheduled query submission.
type arrival struct {
	at     time.Duration
	tenant string
	class  string
	q      *core.Query
}

// buildSchedule precomputes the Poisson arrival schedule from the seed. The
// same seed always yields the same schedule, so every policy pass replays
// an identical workload and the deltas between passes are the policy.
func buildSchedule(cfg ServeBenchConfig) []arrival {
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	interactive := flightQueries("Q1.1", "Q1.2", "Q1.3")
	reporting := flightQueries("Q4.1", "Q4.2", "Q4.3")
	var (
		sched  []arrival
		t      time.Duration
		iNext  int
		rNext  int
		rrRep  int
		mean   = float64(time.Second) / cfg.Rate
		window = cfg.Duration
	)
	for {
		t += time.Duration(rng.ExpFloat64() * mean)
		if t >= window {
			return sched
		}
		if rng.Float64() < cfg.ReportingShare {
			tenant := fmt.Sprintf("report-%d", rrRep%cfg.ReportingTenants)
			rrRep++
			for b := 0; b < cfg.ReportingBurst; b++ {
				sched = append(sched, arrival{at: t, tenant: tenant,
					class: classReporting, q: reporting[rNext%len(reporting)]})
				rNext++
			}
		} else {
			tenant := fmt.Sprintf("tenant-%d", rng.Intn(cfg.Tenants))
			sched = append(sched, arrival{at: t, tenant: tenant,
				class: classInteractive, q: interactive[iNext%len(interactive)]})
			iNext++
		}
	}
}

func flightQueries(names ...string) []*core.Query {
	out := make([]*core.Query, len(names))
	for i, n := range names {
		q, err := ssb.QueryByName(n)
		if err != nil {
			panic(err) // query tables are static; a miss is a programming error
		}
		out[i] = q
	}
	return out
}

// serveBenchEnv is the shared substrate: the load passes reuse one cluster
// and dataset, each with a fresh engine registry and session so per-pass
// metrics never mix.
type serveBenchEnv struct {
	cfg ServeBenchConfig
	c   *cluster.Cluster
	fs  *hdfs.FileSystem
	gen *ssb.Generator
	lay *ssb.Layout
}

func newServeBenchEnv(cfg ServeBenchConfig) (*serveBenchEnv, error) {
	gen := ssb.NewBenchGenerator(cfg.DimScale, cfg.FactRows, cfg.Seed)
	c := cluster.New(cluster.Testing(cfg.Workers))
	fs := hdfs.New(c, hdfs.Options{BlockSize: 256 << 10, Seed: int64(cfg.Seed)})
	lay, err := ssb.Load(fs, gen, "/ssb", ssb.LoadOptions{SkipRC: true, PartitionRows: 4096})
	if err != nil {
		return nil, err
	}
	if _, err := core.EnsureCatalogCached(fs, lay.Catalog()); err != nil {
		return nil, err
	}
	return &serveBenchEnv{cfg: cfg, c: c, fs: fs, gen: gen, lay: lay}, nil
}

// newSession builds a fresh engine + session for one pass. The returned
// registry holds only this pass's metrics.
func (e *serveBenchEnv) newSession(cacheOn bool) (*serve.Session, *mr.Engine) {
	reg := obs.NewRegistry()
	mrEng := mr.NewEngine(e.c, e.fs, mr.Options{Metrics: reg})
	rcb := int64(-1)
	if cacheOn {
		rcb = 0 // default budget
	}
	s := serve.New(mrEng, e.lay.Catalog(), serve.Options{
		MaxConcurrent:     e.cfg.MaxConcurrent,
		QueueDepth:        e.cfg.QueueDepth,
		ResultCacheBudget: rcb,
		ProfileDepth:      -1, // thousands of queries; no per-query tracing
	})
	return s, mrEng
}

// runPass replays the schedule against one session under one policy.
func (e *serveBenchEnv) runPass(policy string, sched []arrival, withTenants, cacheOn bool) (*ServePassStats, error) {
	s, mrEng := e.newSession(cacheOn)
	defer s.Close()

	// Warm the dimension-table cache and cost estimates outside the
	// measured window (every pass pays the same warmup), then give the
	// engine a clean registry so the SLO histograms and the job counter
	// hold only the measured window.
	for _, q := range append(flightQueries("Q1.1", "Q1.2", "Q1.3"), flightQueries("Q4.1", "Q4.2", "Q4.3")...) {
		if _, _, err := s.Query(context.Background(), q); err != nil {
			return nil, fmt.Errorf("bench: %s warmup %s: %w", policy, q.Name, err)
		}
	}
	if cacheOn {
		// The cache passes measure fair-share + caching on repeats within
		// the window, not leftovers of the warmup.
		for _, q := range flightQueries("Q1.1", "Q1.2", "Q1.3", "Q4.1", "Q4.2", "Q4.3") {
			s.InvalidateTable(q.Dims[0].Table)
		}
	}
	reg := obs.NewRegistry()
	mrEng.SetMetrics(reg)

	type classAgg struct {
		offered, completed, shed, errs int64
		attained                       int64
	}
	var (
		mu      sync.Mutex
		agg     = map[string]*classAgg{classInteractive: {}, classReporting: {}}
		sampled = map[string]*results.ResultSet{}
		firstEr error
	)
	target := map[string]time.Duration{
		classInteractive: e.cfg.InteractiveSLO,
		classReporting:   e.cfg.ReportingSLO,
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := range sched {
		a := &sched[i]
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(a *arrival) {
			defer wg.Done()
			ctx := context.Background()
			if withTenants {
				ctx = serve.WithTenant(ctx, a.tenant)
			}
			t0 := time.Now()
			rs, _, err := s.Query(ctx, a.q)
			took := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			ca := agg[a.class]
			ca.offered++
			switch {
			case err == nil:
				ca.completed++
				if took <= target[a.class] {
					ca.attained++
				}
				if sampled[a.q.Name] == nil {
					sampled[a.q.Name] = rs
				}
			case errors.Is(err, serve.ErrQueueFull):
				ca.shed++
			default:
				ca.errs++
				if firstEr == nil {
					firstEr = fmt.Errorf("bench: %s pass %s: %w", policy, a.q.Name, err)
				}
			}
		}(a)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstEr != nil {
		return nil, firstEr
	}

	// Every served result — whichever path served it — must equal the
	// reference executor.
	for name, rs := range sampled {
		q, err := ssb.QueryByName(name)
		if err != nil {
			return nil, err
		}
		want, err := refexec.Run(e.gen, q)
		if err != nil {
			return nil, err
		}
		if ok, why := results.Equivalent(rs, want, 1e-9); !ok {
			return nil, fmt.Errorf("bench: %s pass %s diverged from refexec: %s", policy, name, why)
		}
	}

	snap := reg.Snapshot()
	out := &ServePassStats{Policy: policy, WallNs: wall.Nanoseconds()}
	var total int64
	for _, class := range []string{classInteractive, classReporting} {
		ca := agg[class]
		h := snap.Histograms["serve.slo."+sloClassOf(class)+".latency_ns"]
		cs := ServeClassStats{
			Class:       class,
			Offered:     ca.offered,
			Completed:   ca.completed,
			Shed:        ca.shed,
			Errors:      ca.errs,
			P50Ns:       int64(h.P50),
			P99Ns:       int64(h.P99),
			MaxNs:       int64(h.Max),
			SLOTargetNs: target[class].Nanoseconds(),
		}
		if wall > 0 {
			cs.ThroughputQPS = float64(ca.completed) / wall.Seconds()
		}
		if ca.completed > 0 {
			cs.SLOAttainment = float64(ca.attained) / float64(ca.completed)
		}
		if ca.offered > 0 {
			cs.ShedRate = float64(ca.shed) / float64(ca.offered)
		}
		out.Classes = append(out.Classes, cs)
		total += ca.completed
	}
	if wall > 0 {
		out.TotalQPS = float64(total) / wall.Seconds()
	}
	wait := snap.Histograms["serve.admission_wait_ns"]
	out.AdmitWaitP50Ns = int64(wait.P50)
	out.AdmitWaitP99Ns = int64(wait.P99)
	out.AdmitWaitMaxNs = int64(wait.Max)
	out.MRJobs = snap.Counters["mr.jobs_submitted"]
	st := s.Stats()
	out.ResultHits = st.ResultHits
	out.ResultSubsumed = st.ResultSubsumedHits
	return out, nil
}

// narrowQ41 derives a strictly-narrower Q4.1: the extra d_year conjunct
// reads only a group-by column, so a cached broad Q4.1 answers it by
// post-filtering group rows (the subsumption rule).
func narrowQ41() (*core.Query, error) {
	broad, err := ssb.QueryByName("Q4.1")
	if err != nil {
		return nil, err
	}
	q := *broad
	q.Name = "Q4.1" // same SLO class; the plan fingerprint tells them apart
	q.Dims = append([]core.DimSpec(nil), broad.Dims...)
	d := &q.Dims[0] // the date dimension (no predicate in broad Q4.1)
	if d.Pred != nil {
		return nil, fmt.Errorf("bench: Q4.1 date dim grew a predicate; narrowQ41 needs updating")
	}
	d.Pred = expr.In(expr.Col("d_year"), records.Int(1997), records.Int(1998))
	return &q, nil
}

// runCachePhase measures the result cache directly: a cold pass over the
// distinct query set, then a warm pass over the same set plus the
// subsumption probe, counter-verifying that the warm pass submits zero
// MapReduce jobs.
func (e *serveBenchEnv) runCachePhase() (ResultCachePhase, error) {
	var ph ResultCachePhase
	s, mrEng := e.newSession(true)
	defer s.Close()
	reg := mrEng.Metrics()
	jobs := func() int64 { return reg.Counter("mr.jobs_submitted").Value() }

	queries := flightQueries("Q1.1", "Q1.2", "Q1.3", "Q4.1", "Q4.2", "Q4.3")
	check := func(q *core.Query, rs *results.ResultSet) error {
		want, err := refexec.Run(e.gen, q)
		if err != nil {
			return err
		}
		if ok, why := results.Equivalent(rs, want, 1e-9); !ok {
			return fmt.Errorf("bench: cache phase %s diverged from refexec: %s", q.Name, why)
		}
		return nil
	}

	// The equivalence oracle (a full driver-side scan) runs outside the
	// timed windows so Cold/WarmNs measure serving, not verification.
	type served struct {
		q  *core.Query
		rs *results.ResultSet
	}
	var toCheck []served

	j0 := jobs()
	t0 := time.Now()
	for _, q := range queries {
		rs, _, err := s.Query(context.Background(), q)
		if err != nil {
			return ph, fmt.Errorf("bench: cold cache pass %s: %w", q.Name, err)
		}
		toCheck = append(toCheck, served{q, rs})
	}
	ph.ColdNs = time.Since(t0).Nanoseconds()
	ph.ColdJobs = jobs() - j0

	narrow, err := narrowQ41()
	if err != nil {
		return ph, err
	}
	st0 := s.Stats()
	j1 := jobs()
	t1 := time.Now()
	for _, q := range append(queries, narrow) {
		rs, _, err := s.Query(context.Background(), q)
		if err != nil {
			return ph, fmt.Errorf("bench: warm cache pass %s: %w", q.Name, err)
		}
		toCheck = append(toCheck, served{q, rs})
	}
	ph.WarmNs = time.Since(t1).Nanoseconds()
	ph.WarmJobs = jobs() - j1

	for _, sv := range toCheck {
		if err := check(sv.q, sv.rs); err != nil {
			return ph, err
		}
	}
	st := s.Stats()
	ph.WarmHits = st.ResultHits - st0.ResultHits
	ph.SubsumptionHits = st.ResultSubsumedHits - st0.ResultSubsumedHits
	ph.Equivalent = true
	return ph, nil
}

// RunServeBench replays one seed-deterministic mixed-tenant workload three
// times — FIFO admission (tenant identity stripped), weighted fair-share,
// and fair-share with the result cache — then measures the result cache's
// cold/warm behavior directly. The FIFO-vs-fairshare passes run with the
// result cache off so repeated dashboards genuinely queue; the deltas
// between passes are pure admission policy, because the arrival schedule,
// dataset and cluster are identical.
func RunServeBench(cfg ServeBenchConfig, w io.Writer) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	env, err := newServeBenchEnv(cfg)
	if err != nil {
		return nil, err
	}
	sched := buildSchedule(cfg)
	if len(sched) == 0 {
		return nil, fmt.Errorf("bench: empty arrival schedule (duration %v at %.1f/s)", cfg.Duration, cfg.Rate)
	}
	if w != nil {
		nInt, nRep := 0, 0
		for _, a := range sched {
			if a.class == classInteractive {
				nInt++
			} else {
				nRep++
			}
		}
		fmt.Fprintf(w, "serve bench: %d arrivals over %v (%d interactive, %d reporting), %d workers, maxconc %d\n",
			len(sched), cfg.Duration, nInt, nRep, cfg.Workers, cfg.MaxConcurrent)
	}

	out := &ServeBenchResult{Config: cfg}
	passes := []struct {
		policy      string
		withTenants bool
		cacheOn     bool
	}{
		{"fifo", false, false},
		{"fairshare", true, false},
		{"fairshare+cache", true, true},
	}
	for _, p := range passes {
		st, err := env.runPass(p.policy, sched, p.withTenants, p.cacheOn)
		if err != nil {
			return nil, err
		}
		out.Passes = append(out.Passes, *st)
		if w != nil {
			for _, cs := range st.Classes {
				fmt.Fprintf(w, "%-16s %-12s offered=%-5d done=%-5d shed=%-4d p50=%-10v p99=%-10v slo=%5.1f%% qps=%.1f\n",
					st.Policy, cs.Class, cs.Offered, cs.Completed, cs.Shed,
					time.Duration(cs.P50Ns).Round(time.Millisecond),
					time.Duration(cs.P99Ns).Round(time.Millisecond),
					100*cs.SLOAttainment, cs.ThroughputQPS)
			}
			fmt.Fprintf(w, "%-16s admit_wait p50=%v p99=%v max=%v; mr_jobs=%d result_hits=%d subsumed=%d\n",
				st.Policy,
				time.Duration(st.AdmitWaitP50Ns).Round(time.Millisecond),
				time.Duration(st.AdmitWaitP99Ns).Round(time.Millisecond),
				time.Duration(st.AdmitWaitMaxNs).Round(time.Millisecond),
				st.MRJobs, st.ResultHits, st.ResultSubsumed)
		}
	}

	ph, err := env.runCachePhase()
	if err != nil {
		return nil, err
	}
	out.Cache = ph
	if w != nil {
		speedup := math.Inf(1)
		if ph.WarmNs > 0 {
			speedup = float64(ph.ColdNs) / float64(ph.WarmNs)
		}
		fmt.Fprintf(w, "result cache: cold %v (%d jobs) -> warm %v (%d jobs, %d hits, %d subsumption) %.0fx\n",
			time.Duration(ph.ColdNs).Round(time.Millisecond), ph.ColdJobs,
			time.Duration(ph.WarmNs).Round(time.Millisecond), ph.WarmJobs,
			ph.WarmHits, ph.SubsumptionHits, speedup)
	}
	return out, nil
}
