package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickConfig is a small, fast configuration for unit-testing the harness.
// The fact table must dominate the dimensions (as in the paper) and the
// modeled per-task overheads must be visible in wall time for the figure
// shapes to emerge.
func quickConfig() Config {
	return Config{
		DimScale:  1,
		FactRows:  60_000,
		Seed:      42,
		TimeScale: 5e-3,
		IOScale:   400,
		Repeats:   1,
		WorkersA:  4,
		WorkersB:  8,
	}
}

func TestCalibrateBudgetsSeparates(t *testing.T) {
	h, err := NewHarness(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := h.CalibrateBudgets(6)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || b <= a {
		t.Errorf("budgets A=%d B=%d; want 0 < A < B", a, b)
	}
	// Cluster A's per-slot allowance must admit every "pass" query and
	// reject every OOM-set query.
	allowA := a / 6
	for name, size := range h.hashMax {
		if mapjoinOOMSet[name] && size <= allowA {
			t.Errorf("%s (OOM set, %d bytes) fits in cluster A allowance %d", name, size, allowA)
		}
		if !mapjoinOOMSet[name] && size > allowA {
			t.Errorf("%s (pass set, %d bytes) exceeds cluster A allowance %d", name, size, allowA)
		}
		if size > b/6 {
			t.Errorf("%s (%d bytes) exceeds cluster B allowance %d", name, size, b/6)
		}
	}
	for name, sum := range h.hashSum {
		if sum > a || sum > b {
			t.Errorf("%s: Clydesdale resident tables (%d) exceed a budget (A=%d B=%d)", name, sum, a, b)
		}
	}
}

func TestFigure7ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	h, err := NewHarness(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig, err := h.RunFigure("A", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 13 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		// Clydesdale must beat both Hive plans on every query.
		if r.HiveRepartition <= r.Clydesdale {
			t.Errorf("%s: repartition (%v) not slower than Clydesdale (%v)", r.Query, r.HiveRepartition, r.Clydesdale)
		}
		if !r.MapjoinOOM && r.HiveMapjoin <= r.Clydesdale {
			t.Errorf("%s: mapjoin (%v) not slower than Clydesdale (%v)", r.Query, r.HiveMapjoin, r.Clydesdale)
		}
		// The paper's OOM set must be exactly the mapjoin DNFs on cluster A.
		if mapjoinOOMSet[r.Query] != r.MapjoinOOM {
			t.Errorf("%s: MapjoinOOM = %v, want %v", r.Query, r.MapjoinOOM, mapjoinOOMSet[r.Query])
		}
	}
	if avg := fig.AverageSpeedup(); avg < 2 {
		t.Errorf("average speedup %.2fx; expected a clear Clydesdale win", avg)
	}
	if !strings.Contains(buf.String(), "Figure 7") || !strings.Contains(buf.String(), "DNF(OOM)") {
		t.Error("printed output incomplete")
	}
}

func TestFigure8MapjoinCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	cfg := quickConfig()
	cfg.FactRows = 6_000
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := h.RunFigure("B", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fig.Rows {
		if r.MapjoinOOM {
			t.Errorf("%s: mapjoin OOMed on cluster B (more memory per node)", r.Query)
		}
	}
}

func TestFigure9ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	cfg := quickConfig()
	cfg.Repeats = 3 // medians keep the small block-iteration effect stable
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	abl, err := h.RunFigure9(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Rows) != 13 {
		t.Fatalf("rows = %d", len(abl.Rows))
	}
	nb, nc, nm := abl.Average()
	// Block iteration's effect is small in Go (the per-record overhead it
	// amortizes is much larger in Hadoop); require it not to be an actual
	// speedup beyond timing noise. The other two must cost clearly.
	if nb < 0.95 {
		t.Errorf("disabling block iteration sped things up on average (%.2fx)", nb)
	}
	if nc <= 1.05 {
		t.Errorf("disabling columnar storage cost nothing (%.2fx)", nc)
	}
	if nm <= 1.05 {
		t.Errorf("disabling multi-threading cost nothing (%.2fx)", nm)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("printed output incomplete")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	h, err := NewHarness(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := h.RunTable1("A", 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
		t.Fatalf("throughputs: write %.1f read %.1f", res.WriteMBps, res.ReadMBps)
	}
	// §6.6: HDFS delivers only a fraction of raw disk bandwidth.
	if res.ReadMBps >= res.RawDiskMBps {
		t.Errorf("HDFS read %.1f MB/s >= raw disk %.1f MB/s", res.ReadMBps, res.RawDiskMBps)
	}
	if res.ReadMBps >= res.AggRawMBps {
		t.Errorf("HDFS read %.1f MB/s >= node aggregate %.1f MB/s", res.ReadMBps, res.AggRawMBps)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("printed output incomplete")
	}
}

func TestBreakdownQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	h, err := NewHarness(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	b, err := h.RunBreakdown("Q2.1", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.MapjoinOOM {
		t.Fatal("Q2.1 mapjoin should complete on cluster A")
	}
	// §6.3's structural facts.
	if len(b.MapjoinStages) != 5 { // 3 joins + groupby + orderby
		t.Errorf("mapjoin stages = %d, want 5", len(b.MapjoinStages))
	}
	if b.MapjoinHashLoads <= b.ClyMapTasks {
		t.Errorf("mapjoin hash loads (%d) should exceed Clydesdale's builds (%d)",
			b.MapjoinHashLoads, b.ClyMapTasks)
	}
	if b.MapjoinTotal <= b.ClyTotal {
		t.Error("mapjoin should be slower than Clydesdale")
	}
	if !strings.Contains(buf.String(), "§6.3 breakdown") {
		t.Error("printed output incomplete")
	}
}

func TestSetupClusterUnknownProfile(t *testing.T) {
	h, err := NewHarness(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.SetupCluster("C"); err == nil {
		t.Error("expected error for unknown profile")
	}
}

// TestScanBenchQuick runs the scan-path baseline small and checks its
// headline claims: results cover every query, the selective date-driven
// queries actually prune partitions, and pruning shows up as skipped bytes.
func TestScanBenchQuick(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunScanBench(24_000, 2, 42, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 13 {
		t.Fatalf("scan bench covered %d queries, want 13", len(res.Queries))
	}
	for _, q := range res.Queries {
		if q.Plain.PartitionsPruned != 0 {
			t.Errorf("%s: plain config pruned %d partitions, want 0", q.Query, q.Plain.PartitionsPruned)
		}
		if q.Optimized.PartitionsPruned > 0 && q.Optimized.BytesSkipped == 0 {
			t.Errorf("%s: pruned partitions but skipped no bytes", q.Query)
		}
		if q.Speedup <= 0 {
			t.Errorf("%s: speedup %f not computed", q.Query, q.Speedup)
		}
	}
	for _, name := range []string{"Q1.1", "Q3.4"} {
		found := false
		for _, q := range res.Queries {
			if q.Query == name && q.Optimized.PartitionsPruned > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected partitions pruned in scan bench", name)
		}
	}
	if !strings.Contains(buf.String(), "scan-path baseline") {
		t.Error("progress output missing header")
	}
}
