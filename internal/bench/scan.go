package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"clydesdale/internal/cluster"
	"clydesdale/internal/colstore"
	"clydesdale/internal/core"
	"clydesdale/internal/hdfs"
	"clydesdale/internal/mr"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

// ScanBenchConfig records the shape of the run a scan baseline came from.
type ScanBenchConfig struct {
	FactRows int64   `json:"fact_rows"`
	DimScale float64 `json:"dim_scale"`
	Workers  int     `json:"workers"`
	Seed     uint64  `json:"seed"`
}

// ScanRunStats is one query execution's scan-path measurements under one
// configuration. NsPerRow is TotalNs divided by the table's fact rows (not
// the rows actually decoded), so skipping work via pruning or late
// materialization shows up directly as a lower per-row cost.
type ScanRunStats struct {
	TotalNs          int64   `json:"total_ns"`
	NsPerRow         float64 `json:"ns_per_row"`
	RowsScanned      int64   `json:"rows_scanned"`
	RowsPruned       int64   `json:"rows_pruned"`
	RowsLateSkipped  int64   `json:"rows_late_skipped"`
	RowsBloomSkipped int64   `json:"rows_bloom_skipped"`
	PartitionsPruned int64   `json:"partitions_pruned"`
	BytesSkipped     int64   `json:"bytes_skipped"`
	ProbeRows        int64   `json:"probe_rows"`
}

// ScanQueryStats pairs the full scan path (zone-map pruning + late
// materialization + compressed execution) against the plain scan and the
// compressed-execution ablation for one query.
type ScanQueryStats struct {
	Query string       `json:"query"`
	Plain ScanRunStats `json:"plain"`
	// NoCompressed keeps pruning and late materialization on but disables
	// code-space predicates and bloom pushdown (the -no-code-preds -no-bloom
	// ablation), isolating what compressed execution itself buys.
	NoCompressed ScanRunStats `json:"no_compressed"`
	Optimized    ScanRunStats `json:"optimized"`
	// Speedup is plain ns/row over optimized ns/row (> 1 is an improvement).
	Speedup float64 `json:"speedup"`
	// CompressedSpeedup is no_compressed ns/row over optimized ns/row.
	CompressedSpeedup float64 `json:"compressed_speedup"`
}

// ScanBenchResult is the payload of BENCH_scan.json: the scan-path baseline
// (see EXPERIMENTS.md for how to read and refresh it).
type ScanBenchResult struct {
	Config  ScanBenchConfig  `json:"config"`
	Queries []ScanQueryStats `json:"queries"`
}

// WriteJSON writes the result as indented JSON.
func (r *ScanBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunScanBench measures the scan path on every SSB query three times: with
// every scan optimization disabled (every partition decoded in full), with
// only compressed execution (code-space predicates + bloom pushdown)
// disabled, and with the full scan path. All runs use the same unthrottled
// cluster and warmed engines, so the differences are decode and probe work
// actually avoided. The fact table is written by the standard
// loader, so lo_orderdate is arrival-clustered and the date-driven queries
// genuinely prune.
func RunScanBench(factRows int64, workers int, seed uint64, w io.Writer) (*ScanBenchResult, error) {
	if factRows <= 0 {
		factRows = 120_000
	}
	if workers <= 0 {
		workers = 4
	}
	gen := ssb.NewBenchGenerator(1, factRows, seed)
	c := cluster.New(cluster.Testing(workers))
	fs := hdfs.New(c, hdfs.Options{BlockSize: 256 << 10, Seed: int64(seed)})
	lay, err := ssb.Load(fs, gen, "/ssb", ssb.LoadOptions{SkipRC: true})
	if err != nil {
		return nil, err
	}
	if _, err := core.EnsureCatalogCached(fs, lay.Catalog()); err != nil {
		return nil, err
	}
	mrEng := mr.NewEngine(c, fs, mr.Options{})
	// All three engines share one cross-query dimension-table cache, the
	// Clydesdale resident-hash-table design the serving layer uses. Without
	// it every execution rebuilds every dimension table on every node, and
	// that fixed cost (tens of ms on the join-heavy queries) drowns the
	// scan-path differences this baseline exists to measure.
	tables := serve.NewTableProvider(0)
	plainEng := core.New(mrEng, lay.Catalog(), core.Options{
		NoScanPruning:         true,
		NoLateMaterialization: true,
		NoCodeSpacePreds:      true,
		NoBloomPushdown:       true,
		Tables:                tables,
	})
	noCompEng := core.New(mrEng, lay.Catalog(), core.Options{
		NoCodeSpacePreds: true,
		NoBloomPushdown:  true,
		Tables:           tables,
	})
	optEng := core.New(mrEng, lay.Catalog(), core.Options{Tables: tables})

	out := &ScanBenchResult{Config: ScanBenchConfig{
		FactRows: factRows,
		DimScale: 1,
		Workers:  workers,
		Seed:     seed,
	}}
	if w != nil {
		fmt.Fprintf(w, "scan-path baseline: %d fact rows, %d workers\n", factRows, workers)
		fmt.Fprintf(w, "%-6s %10s %10s %10s %8s %10s %10s %10s %8s %8s\n",
			"Query", "plain/row", "nocomp/row", "opt/row", "pruned", "rows_prn", "late_skip", "bloom_skip", "speedup", "comp_spd")
	}
	// Each configuration runs once to warm caches, then several times with
	// the median wall clock kept. A single query execution is at the mercy
	// of GC pauses and delay-scheduling luck (locality misses wait out
	// delayTolerance, so a rare perfectly-placed run is several times faster
	// than the steady state); the median tracks the steady state where the
	// minimum would report the lucky outlier. Counters are deterministic
	// across runs, so which run is kept only affects the timing.
	const benchRuns = 9
	measure := func(eng *core.Engine, q *core.Query) (ScanRunStats, error) {
		if _, _, err := eng.Execute(context.Background(), q); err != nil { // warm-up
			return ScanRunStats{}, err
		}
		runs := make([]ScanRunStats, 0, benchRuns)
		for run := 0; run < benchRuns; run++ {
			_, rep, err := eng.Execute(context.Background(), q)
			if err != nil {
				return ScanRunStats{}, err
			}
			ctr := rep.Job.Counters
			st := ScanRunStats{
				TotalNs:          rep.Total.Nanoseconds(),
				RowsScanned:      ctr.Get(colstore.CtrRowsScanned),
				RowsPruned:       ctr.Get(colstore.CtrRowsPruned),
				RowsLateSkipped:  ctr.Get(colstore.CtrRowsLateSkipped),
				RowsBloomSkipped: ctr.Get(colstore.CtrRowsBloomSkipped),
				PartitionsPruned: rep.PartitionsPruned,
				BytesSkipped:     rep.BytesSkipped,
				ProbeRows:        ctr.Get(core.CtrProbeRows),
			}
			st.NsPerRow = float64(st.TotalNs) / float64(factRows)
			runs = append(runs, st)
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].TotalNs < runs[j].TotalNs })
		return runs[len(runs)/2], nil
	}
	for _, q := range ssb.Queries() {
		plain, err := measure(plainEng, q)
		if err != nil {
			return nil, fmt.Errorf("bench: plain scan %s: %w", q.Name, err)
		}
		noComp, err := measure(noCompEng, q)
		if err != nil {
			return nil, fmt.Errorf("bench: no-compressed scan %s: %w", q.Name, err)
		}
		opt, err := measure(optEng, q)
		if err != nil {
			return nil, fmt.Errorf("bench: optimized scan %s: %w", q.Name, err)
		}
		st := ScanQueryStats{Query: q.Name, Plain: plain, NoCompressed: noComp, Optimized: opt}
		if opt.NsPerRow > 0 {
			st.Speedup = plain.NsPerRow / opt.NsPerRow
			st.CompressedSpeedup = noComp.NsPerRow / opt.NsPerRow
		}
		out.Queries = append(out.Queries, st)
		if w != nil {
			fmt.Fprintf(w, "%-6s %10.1f %10.1f %10.1f %8d %10d %10d %10d %7.2fx %7.2fx\n",
				st.Query, plain.NsPerRow, noComp.NsPerRow, opt.NsPerRow, opt.PartitionsPruned,
				opt.RowsPruned, opt.RowsLateSkipped, opt.RowsBloomSkipped, st.Speedup, st.CompressedSpeedup)
		}
	}
	return out, nil
}
