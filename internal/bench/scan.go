package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"clydesdale/internal/cluster"
	"clydesdale/internal/colstore"
	"clydesdale/internal/core"
	"clydesdale/internal/hdfs"
	"clydesdale/internal/mr"
	"clydesdale/internal/ssb"
)

// ScanBenchConfig records the shape of the run a scan baseline came from.
type ScanBenchConfig struct {
	FactRows int64   `json:"fact_rows"`
	DimScale float64 `json:"dim_scale"`
	Workers  int     `json:"workers"`
	Seed     uint64  `json:"seed"`
}

// ScanRunStats is one query execution's scan-path measurements under one
// configuration. NsPerRow is TotalNs divided by the table's fact rows (not
// the rows actually decoded), so skipping work via pruning or late
// materialization shows up directly as a lower per-row cost.
type ScanRunStats struct {
	TotalNs          int64   `json:"total_ns"`
	NsPerRow         float64 `json:"ns_per_row"`
	RowsScanned      int64   `json:"rows_scanned"`
	RowsPruned       int64   `json:"rows_pruned"`
	RowsLateSkipped  int64   `json:"rows_late_skipped"`
	PartitionsPruned int64   `json:"partitions_pruned"`
	BytesSkipped     int64   `json:"bytes_skipped"`
	ProbeRows        int64   `json:"probe_rows"`
}

// ScanQueryStats pairs the full scan path (zone-map pruning + late
// materialization) against the plain scan for one query.
type ScanQueryStats struct {
	Query     string       `json:"query"`
	Plain     ScanRunStats `json:"plain"`
	Optimized ScanRunStats `json:"optimized"`
	// Speedup is plain ns/row over optimized ns/row (> 1 is an improvement).
	Speedup float64 `json:"speedup"`
}

// ScanBenchResult is the payload of BENCH_scan.json: the scan-path baseline
// (see EXPERIMENTS.md for how to read and refresh it).
type ScanBenchResult struct {
	Config  ScanBenchConfig  `json:"config"`
	Queries []ScanQueryStats `json:"queries"`
}

// WriteJSON writes the result as indented JSON.
func (r *ScanBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunScanBench measures the scan path on every SSB query twice: once with
// zone-map pruning and late materialization disabled (every partition
// decoded in full) and once with the full scan path. Both runs use the same
// unthrottled cluster and warmed engines, so the difference is decode and
// probe work actually avoided. The fact table is written by the standard
// loader, so lo_orderdate is arrival-clustered and the date-driven queries
// genuinely prune.
func RunScanBench(factRows int64, workers int, seed uint64, w io.Writer) (*ScanBenchResult, error) {
	if factRows <= 0 {
		factRows = 120_000
	}
	if workers <= 0 {
		workers = 4
	}
	gen := ssb.NewBenchGenerator(1, factRows, seed)
	c := cluster.New(cluster.Testing(workers))
	fs := hdfs.New(c, hdfs.Options{BlockSize: 256 << 10, Seed: int64(seed)})
	lay, err := ssb.Load(fs, gen, "/ssb", ssb.LoadOptions{SkipRC: true})
	if err != nil {
		return nil, err
	}
	if _, err := core.EnsureCatalogCached(fs, lay.Catalog()); err != nil {
		return nil, err
	}
	mrEng := mr.NewEngine(c, fs, mr.Options{})
	plainEng := core.New(mrEng, lay.Catalog(), core.Options{
		NoScanPruning:         true,
		NoLateMaterialization: true,
	})
	optEng := core.New(mrEng, lay.Catalog(), core.Options{})

	out := &ScanBenchResult{Config: ScanBenchConfig{
		FactRows: factRows,
		DimScale: 1,
		Workers:  workers,
		Seed:     seed,
	}}
	if w != nil {
		fmt.Fprintf(w, "scan-path baseline: %d fact rows, %d workers\n", factRows, workers)
		fmt.Fprintf(w, "%-6s %10s %10s %8s %10s %10s %12s %8s\n",
			"Query", "plain/row", "opt/row", "pruned", "rows_prn", "late_skip", "bytes_skip", "speedup")
	}
	measure := func(eng *core.Engine, q *core.Query) (ScanRunStats, error) {
		if _, _, err := eng.Execute(context.Background(), q); err != nil { // warm-up
			return ScanRunStats{}, err
		}
		_, rep, err := eng.Execute(context.Background(), q)
		if err != nil {
			return ScanRunStats{}, err
		}
		ctr := rep.Job.Counters
		st := ScanRunStats{
			TotalNs:          rep.Total.Nanoseconds(),
			RowsScanned:      ctr.Get(colstore.CtrRowsScanned),
			RowsPruned:       ctr.Get(colstore.CtrRowsPruned),
			RowsLateSkipped:  ctr.Get(colstore.CtrRowsLateSkipped),
			PartitionsPruned: rep.PartitionsPruned,
			BytesSkipped:     rep.BytesSkipped,
			ProbeRows:        ctr.Get(core.CtrProbeRows),
		}
		st.NsPerRow = float64(st.TotalNs) / float64(factRows)
		return st, nil
	}
	for _, q := range ssb.Queries() {
		plain, err := measure(plainEng, q)
		if err != nil {
			return nil, fmt.Errorf("bench: plain scan %s: %w", q.Name, err)
		}
		opt, err := measure(optEng, q)
		if err != nil {
			return nil, fmt.Errorf("bench: optimized scan %s: %w", q.Name, err)
		}
		st := ScanQueryStats{Query: q.Name, Plain: plain, Optimized: opt}
		if opt.NsPerRow > 0 {
			st.Speedup = plain.NsPerRow / opt.NsPerRow
		}
		out.Queries = append(out.Queries, st)
		if w != nil {
			fmt.Fprintf(w, "%-6s %10.1f %10.1f %8d %10d %10d %12d %7.2fx\n",
				st.Query, plain.NsPerRow, opt.NsPerRow, opt.PartitionsPruned,
				opt.RowsPruned, opt.RowsLateSkipped, opt.BytesSkipped, st.Speedup)
		}
	}
	return out, nil
}
