package hdfs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"clydesdale/internal/cluster"
)

// killOnRead is a ReadFaultInjector that kills the victim node the first
// time it serves a block read, then reports the failure to the namenode —
// the serving replica dying mid-read.
type killOnRead struct {
	c      *cluster.Cluster
	fs     *FileSystem
	victim string
	fired  bool
}

func (k *killOnRead) BeforeBlockRead(nodeID string, blockID int64) error {
	if nodeID == k.victim && !k.fired {
		k.fired = true
		k.c.Node(k.victim).Kill()
		_, _, _ = k.fs.OnNodeFailure(k.victim)
	}
	return nil
}

// TestFailoverWhenServingReplicaKilledMidRead is the regression test for
// the readBlockRange failover loop: the replica chosen to serve the read
// dies after selection; the read must move to a surviving replica and
// return the full, correct bytes.
func TestFailoverWhenServingReplicaKilledMidRead(t *testing.T) {
	c := cluster.New(cluster.Testing(5))
	fs := New(c, Options{BlockSize: 64, Replication: 3, Seed: 11})
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := fs.WriteFile("/ft/f", "node-0", data); err != nil {
		t.Fatal(err)
	}

	locs, err := fs.BlockLocations("/ft/f", 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	victim := locs[0].Hosts[0]
	// A client with no replica of block 0 reads from the victim first.
	client := ""
	for i := 0; i < 5; i++ {
		id := c.Nodes()[i].ID()
		holds := false
		for _, h := range locs[0].Hosts {
			if h == id {
				holds = true
			}
		}
		if !holds {
			client = id
			break
		}
	}
	if client == "" {
		t.Fatal("every node holds a replica of block 0; cannot pick a remote client")
	}

	fs.SetReadFaultInjector(&killOnRead{c: c, fs: fs, victim: victim})
	got, err := fs.ReadAll("/ft/f", client)
	if err != nil {
		t.Fatalf("read did not fail over: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("failover returned wrong bytes")
	}
	if fs.Metrics().Snapshot().Failovers == 0 {
		t.Error("failover not counted")
	}
	locs, _ = fs.BlockLocations("/ft/f", 0, int64(len(data)))
	for _, l := range locs {
		for _, h := range l.Hosts {
			if h == victim {
				t.Errorf("dead node %s still listed as replica", victim)
			}
		}
	}
}

// nullPolicy refuses to place any replicas, forcing re-replication to fail.
type nullPolicy struct{}

func (nullPolicy) ChooseTargets(string, int, int, string, []*cluster.Node, *rand.Rand) []*cluster.Node {
	return nil
}

// TestRereplicationFailuresJoinedAndRetried is the regression test for
// OnNodeFailure error handling: when several blocks fail to re-replicate,
// the returned error must name all of them (not just the last), the
// failures must be counted, and the blocks must heal on the next failure
// event once targets are available again.
func TestRereplicationFailuresJoinedAndRetried(t *testing.T) {
	c := cluster.New(cluster.Testing(5))
	fs := New(c, Options{BlockSize: 32, Replication: 3, Seed: 7})
	data := make([]byte, 100) // 4 blocks, each with a replica on the writer
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/rt/f", "node-0", data); err != nil {
		t.Fatal(err)
	}

	fs.SetPlacementPolicy("/rt", nullPolicy{})
	c.Node("node-0").Kill()
	rerep, lost, err := fs.OnNodeFailure("node-0")
	if err == nil {
		t.Fatal("expected re-replication errors with a null placement policy")
	}
	if rerep != 0 || lost != 0 {
		t.Errorf("rereplicated = %d, lost = %d; want 0, 0", rerep, lost)
	}
	if n := strings.Count(err.Error(), "re-replicate block"); n < 4 {
		t.Errorf("error names %d blocks, want all 4 joined: %v", n, err)
	}
	if got := fs.Metrics().Snapshot().RereplicationsFailed; got != 4 {
		t.Errorf("RereplicationsFailed = %d, want 4", got)
	}
	if got := fs.UnderReplicated(); got != 4 {
		t.Errorf("UnderReplicated = %d, want 4", got)
	}

	// Targets become available again (default policy restored); the next
	// failure event — even of a node holding none of these replicas — must
	// retry and heal the under-replicated blocks.
	fs.SetPlacementPolicy("/rt", nil)
	c.Node("node-1").Kill()
	if _, _, err := fs.OnNodeFailure("node-1"); err != nil {
		t.Fatalf("retry re-replication failed: %v", err)
	}
	if got := fs.UnderReplicated(); got != 0 {
		t.Errorf("UnderReplicated = %d after retry, want 0", got)
	}
	got, err := fs.ReadAll("/rt/f", "node-2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data corrupted across failed + retried re-replication")
	}
}

// TestLostBlockSurfacesReadError: when re-replication could not save a
// block and its last replica dies, readers must get an error — never stale
// or partial bytes presented as success.
func TestLostBlockSurfacesReadError(t *testing.T) {
	c := cluster.New(cluster.Testing(4))
	fs := New(c, Options{BlockSize: 64, Replication: 2, Seed: 13})
	if err := fs.WriteFile("/lb/f", "node-0", bytes.Repeat([]byte{0xEE}, 64)); err != nil {
		t.Fatal(err)
	}
	fs.SetPlacementPolicy("/lb", nullPolicy{}) // no recovery targets

	locs, _ := fs.BlockLocations("/lb/f", 0, 64)
	for _, holder := range locs[0].Hosts {
		c.Node(holder).Kill()
		_, _, _ = fs.OnNodeFailure(holder)
	}
	if fs.LostBlocks() == 0 {
		t.Fatal("block should be lost after every holder died")
	}
	if _, err := fs.ReadAll("/lb/f", "node-3"); err == nil {
		t.Error("read of lost block succeeded")
	} else if !strings.Contains(err.Error(), "lost") {
		t.Errorf("error should say the block is lost, got: %v", err)
	}
}

// TestCorruptReplicaDetectedAndHealed: a corrupted replica must be caught
// by CRC verification, dropped, re-replicated from a pristine copy, and the
// read must succeed with correct bytes.
func TestCorruptReplicaDetectedAndHealed(t *testing.T) {
	c := cluster.New(cluster.Testing(5))
	fs := New(c, Options{BlockSize: 128, Replication: 3, Seed: 17})
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(255 - i)
	}
	if err := fs.WriteFile("/cr/f", "node-0", data); err != nil {
		t.Fatal(err)
	}
	bad, err := fs.CorruptReplica("/cr/f", 0, "")
	if err != nil {
		t.Fatal(err)
	}

	// The corrupted node reads its own replica first and must detect the
	// damage rather than consume it.
	got, err := fs.ReadAll("/cr/f", bad)
	if err != nil {
		t.Fatalf("read did not fail over from corrupt replica: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupt bytes returned to reader")
	}
	snap := fs.Metrics().Snapshot()
	if snap.CRCFailures != 1 {
		t.Errorf("CRCFailures = %d, want 1", snap.CRCFailures)
	}
	if snap.Failovers == 0 {
		t.Error("corruption detection should count as a failover")
	}
	// The bad replica was dropped and replaced; the node may hold a fresh
	// pristine copy again, but a re-read must stay clean.
	got, err = fs.ReadAll("/cr/f", bad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("second read corrupted")
	}
	if extra := fs.Metrics().Snapshot().CRCFailures; extra != 1 {
		t.Errorf("CRCFailures grew to %d on re-read of healed block", extra)
	}
}
