// Package hdfs simulates the Hadoop Distributed File System as the paper
// uses it: a namenode tracking files composed of replicated blocks, datanode
// storage on cluster nodes, locality metadata for the MapReduce scheduler,
// and — critically for Clydesdale — pluggable block placement policies, the
// HDFS 0.21 feature CIF relies on to co-locate the column files of a row
// partition on the same set of nodes.
//
// Reads and writes charge modeled I/O time on the involved cluster nodes
// (degraded by the configured HDFS efficiency, reproducing the §6.6
// observation that HDFS delivers a fraction of raw disk bandwidth) and
// remote reads additionally charge network time.
package hdfs

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"clydesdale/internal/cluster"
	"clydesdale/internal/obs"
)

// DefaultBlockSize is the block size used when Options does not override it.
// The simulation defaults to a smaller block than production HDFS (64 MB)
// so that small-scale-factor datasets still span many blocks and exercise
// placement and locality.
const DefaultBlockSize = 4 << 20

// DefaultReplication is the default replica count, matching the paper's
// experimental setup (replication factor three).
const DefaultReplication = 3

// Options configures a FileSystem.
type Options struct {
	// BlockSize is the maximum bytes per block. Defaults to DefaultBlockSize.
	BlockSize int64
	// Replication is the replica count for new files. Defaults to
	// DefaultReplication, capped at the cluster size.
	Replication int
	// Seed seeds placement randomness for reproducible layouts.
	Seed int64
}

// FileSystem is the simulated distributed filesystem: an in-process
// namenode plus block storage attributed to cluster nodes.
type FileSystem struct {
	cluster     *cluster.Cluster
	blockSize   int64
	replication int

	mu       sync.RWMutex
	files    map[string]*fileMeta
	blocks   map[int64]*blockMeta
	policies map[string]PlacementPolicy // path-prefix → policy
	rng      *rand.Rand
	blockSeq int64

	metrics Metrics

	// injector, when non-nil, intercepts every block read for fault
	// injection (see ReadFaultInjector). Guarded by mu; invoked with no
	// filesystem locks held.
	injector ReadFaultInjector

	// Observability hooks, attached by Observe. Guarded by mu; nil when no
	// observer is attached (the default, zero-cost path).
	tracer        *obs.Tracer
	mLocalBytes   *obs.Counter
	mRemoteBytes  *obs.Counter
	mWrittenBytes *obs.Counter
	mReadNs       *obs.Histogram
	mFailovers    *obs.Counter
	mCRCFailures  *obs.Counter
	mRereplFailed *obs.Counter
}

// ReadFaultInjector intercepts block reads for fault injection. It is
// called once per block-read attempt, before any cost is charged, with the
// serving replica's node ID. Returning a non-nil error makes the read
// attempt fail and fail over to another replica; the injector may also kill
// nodes or slow disks as a side effect. It is invoked with no filesystem
// locks held, so it may call back into the FileSystem (e.g. OnNodeFailure).
type ReadFaultInjector interface {
	BeforeBlockRead(nodeID string, blockID int64) error
}

// SetReadFaultInjector installs (or, with nil, removes) the fault injector
// consulted on every block read. Install before running jobs; the setting is
// not synchronized with in-flight reads.
func (fs *FileSystem) SetReadFaultInjector(inj ReadFaultInjector) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.injector = inj
}

// Metrics exposes the filesystem's read/write accounting.
type Metrics struct {
	LocalBytesRead  atomic.Int64
	RemoteBytesRead atomic.Int64
	BytesWritten    atomic.Int64
	LocalReads      atomic.Int64
	RemoteReads     atomic.Int64
	// Failovers counts read attempts that failed on one replica (dead node,
	// injected error, checksum mismatch) and moved to another.
	Failovers atomic.Int64
	// CRCFailures counts block reads whose replica bytes failed CRC32
	// verification (corruption detected, replica dropped).
	CRCFailures atomic.Int64
	// RereplicationsFailed counts blocks left under-replicated because no
	// eligible target could accept a copy; they are retried on the next
	// failure event.
	RereplicationsFailed atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	LocalBytesRead       int64
	RemoteBytesRead      int64
	BytesWritten         int64
	LocalReads           int64
	RemoteReads          int64
	Failovers            int64
	CRCFailures          int64
	RereplicationsFailed int64
}

// Snapshot returns a copy of the current metric values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		LocalBytesRead:       m.LocalBytesRead.Load(),
		RemoteBytesRead:      m.RemoteBytesRead.Load(),
		BytesWritten:         m.BytesWritten.Load(),
		LocalReads:           m.LocalReads.Load(),
		RemoteReads:          m.RemoteReads.Load(),
		Failovers:            m.Failovers.Load(),
		CRCFailures:          m.CRCFailures.Load(),
		RereplicationsFailed: m.RereplicationsFailed.Load(),
	}
}

type fileMeta struct {
	path   string
	size   int64
	blocks []*blockMeta
}

type blockMeta struct {
	id       int64
	size     int64
	data     []byte
	crc      uint32   // CRC32 (IEEE) of data, computed at seal time
	replicas []string // node IDs holding a replica
	lost     bool     // true when every replica died before re-replication
	// corrupt maps a replica's node ID to the (bit-flipped) bytes that
	// replica would actually return, modeling on-disk corruption. A replica
	// absent from the map serves the pristine data.
	corrupt map[string][]byte
}

// New creates a filesystem over the given cluster.
func New(c *cluster.Cluster, opts Options) *FileSystem {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.Replication <= 0 {
		opts.Replication = DefaultReplication
	}
	if opts.Replication > len(c.Nodes()) {
		opts.Replication = len(c.Nodes())
	}
	return &FileSystem{
		cluster:     c,
		blockSize:   opts.BlockSize,
		replication: opts.Replication,
		files:       make(map[string]*fileMeta),
		blocks:      make(map[int64]*blockMeta),
		policies:    make(map[string]PlacementPolicy),
		rng:         rand.New(rand.NewSource(opts.Seed + 1)),
	}
}

// Cluster returns the underlying cluster.
func (fs *FileSystem) Cluster() *cluster.Cluster { return fs.cluster }

// BlockSize returns the configured block size.
func (fs *FileSystem) BlockSize() int64 { return fs.blockSize }

// Replication returns the configured replica count.
func (fs *FileSystem) Replication() int { return fs.replication }

// Metrics returns the filesystem's accounting counters.
func (fs *FileSystem) Metrics() *Metrics { return &fs.metrics }

// Observe attaches the observability layer: each ReadAt emits an "hdfs-read"
// span into tracer with local/remote byte attrs, and byte counters plus a
// read-latency histogram are maintained in reg. Either argument may be nil.
// Attach before running jobs; Observe is not synchronized with in-flight
// reads.
func (fs *FileSystem) Observe(tracer *obs.Tracer, reg *obs.Registry) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tracer = tracer
	if reg != nil {
		fs.mLocalBytes = reg.Counter("hdfs.read_bytes_local")
		fs.mRemoteBytes = reg.Counter("hdfs.read_bytes_remote")
		fs.mWrittenBytes = reg.Counter("hdfs.write_bytes")
		fs.mReadNs = reg.Histogram("hdfs.read_ns")
		fs.mFailovers = reg.Counter("hdfs.failovers")
		fs.mCRCFailures = reg.Counter("hdfs.crc_failures")
		fs.mRereplFailed = reg.Counter("hdfs.rereplication_failed")
	} else {
		fs.mLocalBytes, fs.mRemoteBytes, fs.mWrittenBytes, fs.mReadNs = nil, nil, nil, nil
		fs.mFailovers, fs.mCRCFailures, fs.mRereplFailed = nil, nil, nil
	}
}

// CorruptReplica flips bytes in the copy of block blockIdx of path held by
// nodeID, modeling silent on-disk corruption of one replica. The other
// replicas keep the pristine bytes, so a CRC-verifying reader detects the
// damage and fails over. nodeID "" picks the block's first replica. It
// returns the ID of the node whose replica was corrupted.
func (fs *FileSystem) CorruptReplica(path string, blockIdx int, nodeID string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return "", fmt.Errorf("hdfs: corrupt %s: no such file", path)
	}
	if blockIdx < 0 || blockIdx >= len(f.blocks) {
		return "", fmt.Errorf("hdfs: corrupt %s: block %d out of range [0,%d)", path, blockIdx, len(f.blocks))
	}
	b := f.blocks[blockIdx]
	if nodeID == "" {
		if len(b.replicas) == 0 {
			return "", fmt.Errorf("hdfs: corrupt %s block %d: no replicas", path, blockIdx)
		}
		nodeID = b.replicas[0]
	} else {
		found := false
		for _, rep := range b.replicas {
			if rep == nodeID {
				found = true
				break
			}
		}
		if !found {
			return "", fmt.Errorf("hdfs: corrupt %s block %d: node %s holds no replica", path, blockIdx, nodeID)
		}
	}
	bad := append([]byte(nil), b.data...)
	for i := 0; i < len(bad); i += 37 {
		bad[i] ^= 0xA5
	}
	if b.corrupt == nil {
		b.corrupt = make(map[string][]byte)
	}
	b.corrupt[nodeID] = bad
	return nodeID, nil
}

// SetPlacementPolicy installs a pluggable placement policy for all paths
// with the given prefix (mirroring HDFS 0.21's per-path pluggable policies
// that CIF uses). The longest matching prefix wins.
func (fs *FileSystem) SetPlacementPolicy(prefix string, p PlacementPolicy) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.policies[prefix] = p
}

func (fs *FileSystem) policyFor(path string) PlacementPolicy {
	best := ""
	var pol PlacementPolicy
	for prefix, p := range fs.policies {
		if strings.HasPrefix(path, prefix) && len(prefix) > len(best) {
			best, pol = prefix, p
		}
	}
	if pol == nil {
		return defaultPolicy{}
	}
	return pol
}

// Exists reports whether the path exists.
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// FileInfo describes a stored file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks int
}

// Stat returns metadata for the path.
func (fs *FileSystem) Stat(path string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("hdfs: stat %s: no such file", path)
	}
	return FileInfo{Path: f.path, Size: f.size, Blocks: len(f.blocks)}, nil
}

// List returns the paths with the given prefix, sorted.
func (fs *FileSystem) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes the path (and its blocks). Deleting a missing path is not
// an error, matching HDFS semantics with recursive delete.
func (fs *FileSystem) Delete(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return
	}
	for _, b := range f.blocks {
		delete(fs.blocks, b.id)
	}
	delete(fs.files, path)
}

// DeletePrefix removes every path with the given prefix.
func (fs *FileSystem) DeletePrefix(prefix string) {
	for _, p := range fs.List(prefix) {
		fs.Delete(p)
	}
}

// Rename moves src to dst. dst must not exist.
func (fs *FileSystem) Rename(src, dst string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[src]
	if !ok {
		return fmt.Errorf("hdfs: rename %s: no such file", src)
	}
	if _, exists := fs.files[dst]; exists {
		return fmt.Errorf("hdfs: rename to %s: destination exists", dst)
	}
	delete(fs.files, src)
	f.path = dst
	fs.files[dst] = f
	return nil
}

// BlockLocation describes one block of a file: its byte range within the
// file and the nodes holding replicas.
type BlockLocation struct {
	Offset int64
	Length int64
	Hosts  []string
}

// BlockLocations returns the blocks overlapping [offset, offset+length) of
// the file, in order, with their replica hosts — the locality metadata the
// MapReduce scheduler consumes.
func (fs *FileSystem) BlockLocations(path string, offset, length int64) ([]BlockLocation, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: locations %s: no such file", path)
	}
	var out []BlockLocation
	var pos int64
	end := offset + length
	for _, b := range f.blocks {
		bEnd := pos + b.size
		if bEnd > offset && pos < end {
			out = append(out, BlockLocation{
				Offset: pos,
				Length: b.size,
				Hosts:  append([]string(nil), b.replicas...),
			})
		}
		pos = bEnd
	}
	return out, nil
}

// nextBlockID allocates a block ID. Caller holds fs.mu.
func (fs *FileSystem) nextBlockID() int64 {
	fs.blockSeq++
	return fs.blockSeq
}
