package hdfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"clydesdale/internal/cluster"
)

// TestConcurrentReadersWriters hammers the filesystem from many goroutines:
// distinct writers creating files while readers re-read completed ones.
func TestConcurrentReadersWriters(t *testing.T) {
	c := cluster.New(cluster.Testing(4))
	fs := New(c, Options{BlockSize: 512, Seed: 21})

	const files = 24
	payload := func(i int) []byte {
		data := make([]byte, 700+i*13)
		for j := range data {
			data[j] = byte(i * (j + 1))
		}
		return data
	}

	var wg sync.WaitGroup
	errs := make(chan error, files*3)
	for i := 0; i < files; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/c/f-%03d", i)
			node := fmt.Sprintf("node-%d", i%4)
			if err := fs.WriteFile(path, node, payload(i)); err != nil {
				errs <- err
				return
			}
			// Immediately read back from two different nodes.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					got, err := fs.ReadAll(path, fmt.Sprintf("node-%d", (i+r+1)%4))
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(got, payload(i)) {
						errs <- fmt.Errorf("%s: corrupted read", path)
					}
				}(r)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(fs.List("/c/")); got != files {
		t.Errorf("files = %d, want %d", got, files)
	}
}

// TestDefaultPlacementSpreadsReplicas checks the default policy balances
// second/third replicas across the cluster rather than pinning them.
func TestDefaultPlacementSpreadsReplicas(t *testing.T) {
	c := cluster.New(cluster.Testing(6))
	fs := New(c, Options{BlockSize: 64, Replication: 3, Seed: 77})
	counts := map[string]int{}
	for i := 0; i < 60; i++ {
		path := fmt.Sprintf("/s/f-%d", i)
		if err := fs.WriteFile(path, "node-0", make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		locs, _ := fs.BlockLocations(path, 0, 64)
		for _, h := range locs[0].Hosts {
			counts[h]++
		}
	}
	// node-0 holds every first replica (writer locality).
	if counts["node-0"] != 60 {
		t.Errorf("writer-local replicas = %d, want 60", counts["node-0"])
	}
	// Every other node should hold a fair share of the remaining replicas
	// (120 replicas over 5 nodes = 24 each; allow wide slack).
	for n, got := range counts {
		if n == "node-0" {
			continue
		}
		if got < 8 || got > 40 {
			t.Errorf("%s holds %d replicas; placement is badly skewed", n, got)
		}
	}
}

// TestConcurrentRereplication exercises failure handling while reads are in
// flight.
func TestConcurrentRereplication(t *testing.T) {
	c := cluster.New(cluster.Testing(5))
	fs := New(c, Options{BlockSize: 256, Replication: 3, Seed: 9})
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 255)
	}
	for i := 0; i < 6; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/r/f-%d", i), "node-1", data); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := fs.ReadAll(fmt.Sprintf("/r/f-%d", i), "node-2")
			if err == nil && !bytes.Equal(got, data) {
				t.Errorf("f-%d corrupted", i)
			}
			// A read error is acceptable only if it mentions replicas (the
			// node died mid-read); data corruption never is.
		}(i)
	}
	c.Node("node-1").Kill()
	if _, _, err := fs.OnNodeFailure("node-1"); err != nil {
		t.Error(err)
	}
	wg.Wait()
	// After recovery every file is intact and fully replicated.
	if fs.UnderReplicated() != 0 {
		t.Errorf("under-replicated = %d", fs.UnderReplicated())
	}
	for i := 0; i < 6; i++ {
		got, err := fs.ReadAll(fmt.Sprintf("/r/f-%d", i), "node-3")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("f-%d corrupted after re-replication", i)
		}
	}
}
