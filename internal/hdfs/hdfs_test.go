package hdfs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"clydesdale/internal/cluster"
)

func newTestFS(t *testing.T, workers int, blockSize int64) *FileSystem {
	t.Helper()
	c := cluster.New(cluster.Testing(workers))
	return New(c, Options{BlockSize: blockSize, Seed: 42})
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newTestFS(t, 4, 64)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := fs.WriteFile("/t/file", "node-0", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/t/file", "node-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	info, err := fs.Stat("/t/file")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 1000 {
		t.Errorf("Size = %d", info.Size)
	}
	wantBlocks := (1000 + 63) / 64
	if info.Blocks != wantBlocks {
		t.Errorf("Blocks = %d, want %d", info.Blocks, wantBlocks)
	}
}

func TestWriteReadRoundTripQuick(t *testing.T) {
	fs := newTestFS(t, 3, 32)
	i := 0
	f := func(data []byte) bool {
		i++
		path := fmt.Sprintf("/q/%d", i)
		if err := fs.WriteFile(path, "", data); err != nil {
			return false
		}
		got, err := fs.ReadAll(path, "node-0")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCreateExistingFails(t *testing.T) {
	fs := newTestFS(t, 2, 64)
	if err := fs.WriteFile("/a", "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/a", ""); err == nil {
		t.Error("expected create-exists error")
	}
}

func TestAbortDiscards(t *testing.T) {
	fs := newTestFS(t, 2, 8)
	w, err := fs.Create("/a", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if fs.Exists("/a") {
		t.Error("aborted file should not exist")
	}
	// Name is free again.
	if err := fs.WriteFile("/a", "", []byte("y")); err != nil {
		t.Errorf("recreate after abort: %v", err)
	}
}

func TestFileVisibleOnlyAfterClose(t *testing.T) {
	fs := newTestFS(t, 2, 8)
	w, err := fs.Create("/pending", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	if info, err := fs.Stat("/pending"); err != nil {
		t.Fatal(err)
	} else if info.Size != 0 {
		t.Errorf("size before close = %d, want 0", info.Size)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat("/pending"); info.Size != 16 {
		t.Errorf("size after close = %d", info.Size)
	}
}

func TestListDeleteRename(t *testing.T) {
	fs := newTestFS(t, 2, 64)
	for _, p := range []string{"/d/a", "/d/b", "/e/c"} {
		if err := fs.WriteFile(p, "", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.List("/d/"); len(got) != 2 || got[0] != "/d/a" {
		t.Errorf("List = %v", got)
	}
	fs.Delete("/d/a")
	if fs.Exists("/d/a") {
		t.Error("Delete failed")
	}
	fs.Delete("/d/a") // idempotent
	if err := fs.Rename("/d/b", "/d/z"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/d/z") || fs.Exists("/d/b") {
		t.Error("Rename failed")
	}
	if err := fs.Rename("/nope", "/x"); err == nil {
		t.Error("expected rename-missing error")
	}
	if err := fs.Rename("/d/z", "/e/c"); err == nil {
		t.Error("expected rename-collision error")
	}
	fs.DeletePrefix("/")
	if len(fs.List("/")) != 0 {
		t.Error("DeletePrefix failed")
	}
}

func TestReplication(t *testing.T) {
	c := cluster.New(cluster.Testing(5))
	fs := New(c, Options{BlockSize: 16, Replication: 3, Seed: 1})
	if err := fs.WriteFile("/r", "node-0", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations("/r", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 {
		t.Fatalf("blocks = %d, want 4", len(locs))
	}
	for _, l := range locs {
		if len(l.Hosts) != 3 {
			t.Errorf("replicas = %d, want 3", len(l.Hosts))
		}
		if l.Hosts[0] != "node-0" {
			t.Errorf("first replica = %s, want writer node", l.Hosts[0])
		}
		seen := map[string]bool{}
		for _, h := range l.Hosts {
			if seen[h] {
				t.Errorf("duplicate replica host %s", h)
			}
			seen[h] = true
		}
	}
}

func TestReplicationCappedAtClusterSize(t *testing.T) {
	c := cluster.New(cluster.Testing(2))
	fs := New(c, Options{Replication: 5})
	if fs.Replication() != 2 {
		t.Errorf("Replication = %d, want 2", fs.Replication())
	}
}

func TestBlockLocationsRange(t *testing.T) {
	fs := newTestFS(t, 3, 10)
	if err := fs.WriteFile("/f", "", make([]byte, 35)); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations("/f", 12, 10) // spans blocks 1 and 2
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 || locs[0].Offset != 10 || locs[1].Offset != 20 {
		t.Errorf("locations = %+v", locs)
	}
	if _, err := fs.BlockLocations("/missing", 0, 1); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLocalVsRemoteMetrics(t *testing.T) {
	c := cluster.New(cluster.Testing(4))
	fs := New(c, Options{BlockSize: 1 << 20, Replication: 2, Seed: 7})
	if err := fs.WriteFile("/m", "node-0", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	// Reading from the writer node is local (writer holds replica 1).
	if _, err := fs.ReadAll("/m", "node-0"); err != nil {
		t.Fatal(err)
	}
	snap := fs.Metrics().Snapshot()
	if snap.LocalBytesRead != 1000 || snap.RemoteBytesRead != 0 {
		t.Errorf("after local read: %+v", snap)
	}
	// Find a node with no replica and read from there.
	locs, _ := fs.BlockLocations("/m", 0, 1000)
	holders := map[string]bool{}
	for _, h := range locs[0].Hosts {
		holders[h] = true
	}
	var outsider string
	for _, n := range c.Nodes() {
		if !holders[n.ID()] {
			outsider = n.ID()
			break
		}
	}
	if outsider == "" {
		t.Fatal("no outsider node")
	}
	if _, err := fs.ReadAll("/m", outsider); err != nil {
		t.Fatal(err)
	}
	snap = fs.Metrics().Snapshot()
	if snap.RemoteBytesRead != 1000 {
		t.Errorf("after remote read: %+v", snap)
	}
}

func TestSeekAndPartialReads(t *testing.T) {
	fs := newTestFS(t, 2, 8)
	data := []byte("abcdefghijklmnopqrstuvwxyz")
	if err := fs.WriteFile("/s", "", data); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/s", "node-0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != 26 {
		t.Errorf("Size = %d", r.Size())
	}
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "klmno" {
		t.Errorf("ReadAt = %q", buf)
	}
	if _, err := r.Seek(20, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	n, err := r.Read(make([]byte, 100)) // hits EOF
	if n != 6 || (err != nil && err != io.EOF) {
		t.Errorf("Read at tail: n=%d err=%v", n, err)
	}
	if _, err := r.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("ReadAt past end: %v", err)
	}
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Error("expected negative seek error")
	}
	if _, err := r.Seek(0, 99); err == nil {
		t.Error("expected bad whence error")
	}
	if _, err := r.Seek(-3, io.SeekEnd); err != nil {
		t.Error(err)
	}
	n, _ = r.Read(buf)
	if string(buf[:n]) != "xyz" {
		t.Errorf("tail read = %q", buf[:n])
	}
}

func TestOpenMissing(t *testing.T) {
	fs := newTestFS(t, 2, 8)
	if _, err := fs.Open("/missing", ""); err == nil {
		t.Error("expected error")
	}
	if _, err := fs.Stat("/missing"); err == nil {
		t.Error("expected error")
	}
}

func TestColocatePolicy(t *testing.T) {
	c := cluster.New(cluster.Testing(6))
	fs := New(c, Options{BlockSize: 16, Replication: 3, Seed: 3})
	fs.SetPlacementPolicy("/cif/", ColocatePolicy{})

	// Several column files in the same partition directory must share
	// replica sets for every block.
	var want []string
	for _, col := range []string{"c0", "c1", "c2"} {
		path := "/cif/tbl/part-0/" + col + ".dat"
		if err := fs.WriteFile(path, "", make([]byte, 48)); err != nil {
			t.Fatal(err)
		}
		locs, err := fs.BlockLocations(path, 0, 48)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range locs {
			if want == nil {
				want = l.Hosts
			} else if fmt.Sprint(l.Hosts) != fmt.Sprint(want) {
				t.Errorf("%s block hosts %v != %v", path, l.Hosts, want)
			}
		}
	}

	// A different partition dir should (with high probability under
	// rendezvous hashing over 6 nodes) get a different set; at minimum it
	// must be internally consistent.
	if err := fs.WriteFile("/cif/tbl/part-1/c0.dat", "", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}

	// Paths outside the policy prefix use the default policy.
	if err := fs.WriteFile("/other/f", "node-0", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/other/f", 0, 16)
	if locs[0].Hosts[0] != "node-0" {
		t.Error("default policy should place first replica on writer")
	}
}

func TestColocateStableUnderMembershipChange(t *testing.T) {
	// Rendezvous hashing: killing an unrelated node must not change the
	// targets for a directory whose nodes survive.
	c := cluster.New(cluster.Testing(6))
	pol := ColocatePolicy{}
	rng := rand.New(rand.NewSource(1))
	before := pol.ChooseTargets("/cif/tbl/part-0/c0.dat", 0, 3, "", c.Alive(), rng)
	ids := map[string]bool{}
	for _, n := range before {
		ids[n.ID()] = true
	}
	// Kill a node not in the chosen set.
	for _, n := range c.Nodes() {
		if !ids[n.ID()] {
			n.Kill()
			break
		}
	}
	after := pol.ChooseTargets("/cif/tbl/part-0/c0.dat", 0, 3, "", c.Alive(), rng)
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Errorf("targets changed: %v -> %v", before, after)
	}
}

func TestNodeFailureRereplication(t *testing.T) {
	c := cluster.New(cluster.Testing(5))
	fs := New(c, Options{BlockSize: 32, Replication: 3, Seed: 9})
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/f", "node-0", data); err != nil {
		t.Fatal(err)
	}
	c.Node("node-0").Kill()
	rerep, lost, err := fs.OnNodeFailure("node-0")
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Errorf("lost = %d", lost)
	}
	if rerep == 0 {
		t.Error("expected re-replications")
	}
	if fs.UnderReplicated() != 0 {
		t.Errorf("under-replicated = %d after recovery", fs.UnderReplicated())
	}
	got, err := fs.ReadAll("/f", "node-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data corrupted by re-replication")
	}
	// New replicas must not include the dead node.
	locs, _ := fs.BlockLocations("/f", 0, int64(len(data)))
	for _, l := range locs {
		for _, h := range l.Hosts {
			if h == "node-0" {
				t.Error("dead node still listed as replica")
			}
		}
	}
}

func TestAllReplicasLost(t *testing.T) {
	c := cluster.New(cluster.Testing(3))
	fs := New(c, Options{BlockSize: 32, Replication: 1, Seed: 5})
	if err := fs.WriteFile("/f", "node-1", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Kill the single replica holder.
	locs, _ := fs.BlockLocations("/f", 0, 4)
	holder := locs[0].Hosts[0]
	c.Node(holder).Kill()
	_, lost, _ := fs.OnNodeFailure(holder)
	if lost != 1 {
		t.Errorf("lost = %d, want 1", lost)
	}
	if fs.LostBlocks() != 1 {
		t.Errorf("LostBlocks = %d", fs.LostBlocks())
	}
	if _, err := fs.ReadAll("/f", "node-0"); err == nil {
		t.Error("expected read error for lost block")
	}
}

func TestWriterAfterClose(t *testing.T) {
	fs := newTestFS(t, 2, 8)
	w, _ := fs.Create("/w", "")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("expected write-after-close error")
	}
	if err := w.Close(); err != nil {
		t.Error("double close should be nil")
	}
}
