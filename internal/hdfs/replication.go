package hdfs

import "fmt"

// OnNodeFailure removes the dead node from every block's replica set and
// re-replicates under-replicated blocks onto live nodes, charging the copy
// traffic (disk read at a surviving source, network + disk write at the new
// target). Blocks whose every replica has died are marked lost.
//
// It returns the number of blocks re-replicated and the number lost.
func (fs *FileSystem) OnNodeFailure(nodeID string) (rereplicated, lost int, err error) {
	type job struct {
		b    *blockMeta
		path string
	}
	var jobs []job

	fs.mu.Lock()
	for _, f := range fs.files {
		for _, b := range f.blocks {
			removed := false
			keep := b.replicas[:0]
			for _, rep := range b.replicas {
				if rep == nodeID {
					removed = true
					continue
				}
				keep = append(keep, rep)
			}
			b.replicas = keep
			if !removed {
				continue
			}
			if len(b.replicas) == 0 {
				b.lost = true
				lost++
				continue
			}
			jobs = append(jobs, job{b: b, path: f.path})
		}
	}
	fs.mu.Unlock()

	for _, j := range jobs {
		if e := fs.rereplicate(j.b, j.path); e != nil {
			err = e
			continue
		}
		rereplicated++
	}
	return rereplicated, lost, err
}

// rereplicate copies one under-replicated block to a new live target.
func (fs *FileSystem) rereplicate(b *blockMeta, path string) error {
	alive := fs.cluster.Alive()

	fs.mu.Lock()
	have := make(map[string]bool, len(b.replicas))
	for _, rep := range b.replicas {
		have[rep] = true
	}
	need := fs.replication - len(b.replicas)
	policy := fs.policyFor(path)
	// Ask the policy for a full set, then take targets we don't already have.
	candidates := policy.ChooseTargets(path, 0, len(alive), "", alive, fs.rng)
	size := b.size
	var source string
	if len(b.replicas) > 0 {
		source = b.replicas[0]
	}
	fs.mu.Unlock()

	if need <= 0 {
		return nil
	}
	src := fs.cluster.Node(source)
	for _, target := range candidates {
		if need == 0 {
			break
		}
		if have[target.ID()] || !target.IsAlive() {
			continue
		}
		if src != nil && src.IsAlive() {
			if err := src.ChargeDiskRead(size, true); err != nil {
				return fmt.Errorf("hdfs: re-replicate block %d: %w", b.id, err)
			}
		}
		if err := target.ChargeNet(size); err != nil {
			return fmt.Errorf("hdfs: re-replicate block %d: %w", b.id, err)
		}
		if err := target.ChargeDiskWrite(size, true); err != nil {
			return fmt.Errorf("hdfs: re-replicate block %d: %w", b.id, err)
		}
		fs.mu.Lock()
		b.replicas = append(b.replicas, target.ID())
		fs.mu.Unlock()
		have[target.ID()] = true
		need--
	}
	return nil
}

// UnderReplicated returns the number of blocks with fewer than the
// configured replica count (excluding lost blocks).
func (fs *FileSystem) UnderReplicated() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := 0
	for _, b := range fs.blocks {
		if !b.lost && len(b.replicas) < fs.replication {
			n++
		}
	}
	return n
}

// LostBlocks returns the number of blocks with no surviving replica.
func (fs *FileSystem) LostBlocks() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := 0
	for _, b := range fs.blocks {
		if b.lost {
			n++
		}
	}
	return n
}
