package hdfs

import (
	"errors"
	"fmt"
)

// OnNodeFailure removes the dead node from every block's replica set and
// re-replicates under-replicated blocks onto live nodes, charging the copy
// traffic (disk read at a surviving source, network + disk write at the new
// target). Blocks whose every replica has died are marked lost. Blocks left
// under-replicated by an earlier failed re-replication are retried here too,
// so a transient shortage of targets heals on the next failure event.
//
// It returns the number of blocks re-replicated and the number lost. The
// returned error joins every per-block re-replication error (it is not just
// the last one); each failure also increments the
// hdfs.rereplication_failed counter.
func (fs *FileSystem) OnNodeFailure(nodeID string) (rereplicated, lost int, err error) {
	type job struct {
		b    *blockMeta
		path string
	}
	var jobs []job

	fs.mu.Lock()
	for _, f := range fs.files {
		for _, b := range f.blocks {
			removed := false
			keep := b.replicas[:0]
			for _, rep := range b.replicas {
				if rep == nodeID {
					removed = true
					continue
				}
				keep = append(keep, rep)
			}
			b.replicas = keep
			if removed {
				delete(b.corrupt, nodeID)
			}
			if b.lost {
				continue
			}
			if len(b.replicas) == 0 {
				b.lost = true
				lost++
				continue
			}
			// Re-replicate blocks this failure degraded, and blocks a
			// previous failure left under-replicated (retry path).
			if removed || len(b.replicas) < fs.replication {
				jobs = append(jobs, job{b: b, path: f.path})
			}
		}
	}
	fs.mu.Unlock()

	var errs []error
	for _, j := range jobs {
		if e := fs.rereplicate(j.b, j.path); e != nil {
			errs = append(errs, e)
			fs.noteRereplicationFailure()
			continue
		}
		rereplicated++
	}
	return rereplicated, lost, errors.Join(errs...)
}

// noteRereplicationFailure records one block left under-replicated in
// metrics and, when attached, the obs registry.
func (fs *FileSystem) noteRereplicationFailure() {
	fs.metrics.RereplicationsFailed.Add(1)
	fs.mu.RLock()
	ctr := fs.mRereplFailed
	fs.mu.RUnlock()
	if ctr != nil {
		ctr.Inc()
	}
}

// rereplicate copies one under-replicated block to new live targets. The
// wanted replica count is capped at the number of live nodes — with a
// 3-node cluster and replication 3, losing a node leaves 2 replicas as the
// best achievable state, not an error. An error is returned only when an
// achievable copy could not be made (no eligible target accepted, or
// charging a chosen target failed).
func (fs *FileSystem) rereplicate(b *blockMeta, path string) error {
	alive := fs.cluster.Alive()

	fs.mu.Lock()
	have := make(map[string]bool, len(b.replicas))
	for _, rep := range b.replicas {
		have[rep] = true
	}
	want := fs.replication
	if want > len(alive) {
		want = len(alive)
	}
	need := want - len(b.replicas)
	policy := fs.policyFor(path)
	// Ask the policy for a full set, then take targets we don't already have.
	candidates := policy.ChooseTargets(path, 0, len(alive), "", alive, fs.rng)
	size := b.size
	var source string
	if len(b.replicas) > 0 {
		source = b.replicas[0]
	}
	fs.mu.Unlock()

	if need <= 0 {
		return nil
	}
	src := fs.cluster.Node(source)
	for _, target := range candidates {
		if need == 0 {
			break
		}
		if have[target.ID()] || !target.IsAlive() {
			continue
		}
		if src != nil && src.IsAlive() {
			if err := src.ChargeDiskRead(size, true); err != nil {
				return fmt.Errorf("hdfs: re-replicate block %d: %w", b.id, err)
			}
		}
		if err := target.ChargeNet(size); err != nil {
			return fmt.Errorf("hdfs: re-replicate block %d: %w", b.id, err)
		}
		if err := target.ChargeDiskWrite(size, true); err != nil {
			return fmt.Errorf("hdfs: re-replicate block %d: %w", b.id, err)
		}
		fs.mu.Lock()
		b.replicas = append(b.replicas, target.ID())
		fs.mu.Unlock()
		have[target.ID()] = true
		need--
	}
	if need > 0 {
		return fmt.Errorf("hdfs: re-replicate block %d of %s: still %d short (no eligible target)", b.id, path, need)
	}
	return nil
}

// UnderReplicated returns the number of blocks with fewer than the
// configured replica count (excluding lost blocks).
func (fs *FileSystem) UnderReplicated() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := 0
	for _, b := range fs.blocks {
		if !b.lost && len(b.replicas) < fs.replication {
			n++
		}
	}
	return n
}

// LostBlocks returns the number of blocks with no surviving replica.
func (fs *FileSystem) LostBlocks() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := 0
	for _, b := range fs.blocks {
		if b.lost {
			n++
		}
	}
	return n
}
