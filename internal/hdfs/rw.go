package hdfs

import (
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"time"

	"clydesdale/internal/obs"
)

// Writer streams data into a new file. Data becomes visible atomically at
// Close, like an HDFS file being closed. Writer is not safe for concurrent
// use.
type Writer struct {
	fs     *FileSystem
	path   string
	writer string // node ID of the writing client, or "" for external
	buf    []byte
	blocks []*blockMeta
	size   int64
	closed bool
}

// Create starts writing a new file. writerNode is the cluster node the
// writing client runs on (used for replica placement and local-write
// accounting); pass "" for an external client. Create fails if the path
// already exists.
func (fs *FileSystem) Create(path, writerNode string) (*Writer, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, exists := fs.files[path]; exists {
		return nil, fmt.Errorf("hdfs: create %s: file exists", path)
	}
	// Reserve the name so concurrent creators conflict deterministically.
	fs.files[path] = &fileMeta{path: path}
	return &Writer{fs: fs, path: path, writer: writerNode}, nil
}

// Write buffers p, sealing full blocks as they fill.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("hdfs: write to closed writer for %s", w.path)
	}
	w.buf = append(w.buf, p...)
	for int64(len(w.buf)) >= w.fs.blockSize {
		if err := w.seal(w.buf[:w.fs.blockSize]); err != nil {
			return 0, err
		}
		w.buf = w.buf[w.fs.blockSize:]
	}
	return len(p), nil
}

// seal stores one block: chooses replica targets via the placement policy,
// charges the write pipeline, and records the block.
func (w *Writer) seal(data []byte) error {
	fs := w.fs
	alive := fs.cluster.Alive()
	if len(alive) == 0 {
		return fmt.Errorf("hdfs: write %s: no alive datanodes", w.path)
	}

	fs.mu.Lock()
	policy := fs.policyFor(w.path)
	id := fs.nextBlockID()
	targets := policy.ChooseTargets(w.path, len(w.blocks), fs.replication, w.writer, alive, fs.rng)
	fs.mu.Unlock()

	if len(targets) == 0 {
		return fmt.Errorf("hdfs: write %s: placement policy returned no targets", w.path)
	}

	// Charge the replication pipeline: every replica pays a disk write;
	// every hop that crosses nodes pays network on the receiver.
	for i, n := range targets {
		if err := n.ChargeDiskWrite(int64(len(data)), true); err != nil {
			return fmt.Errorf("hdfs: write %s: %w", w.path, err)
		}
		crossesNetwork := i > 0 || n.ID() != w.writer
		if crossesNetwork {
			if err := n.ChargeNet(int64(len(data))); err != nil {
				return fmt.Errorf("hdfs: write %s: %w", w.path, err)
			}
		}
	}
	fs.metrics.BytesWritten.Add(int64(len(data)))
	fs.mu.RLock()
	written := fs.mWrittenBytes
	fs.mu.RUnlock()
	if written != nil {
		written.Add(int64(len(data)))
	}

	b := &blockMeta{
		id:   id,
		size: int64(len(data)),
		data: append([]byte(nil), data...),
		crc:  crc32.ChecksumIEEE(data),
	}
	for _, n := range targets {
		b.replicas = append(b.replicas, n.ID())
	}
	fs.mu.Lock()
	fs.blocks[id] = b
	fs.mu.Unlock()
	w.blocks = append(w.blocks, b)
	w.size += int64(len(data))
	return nil
}

// Close seals any buffered remainder and publishes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.seal(w.buf); err != nil {
			return err
		}
		w.buf = nil
	}
	fs := w.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.files[w.path]
	f.size = w.size
	f.blocks = w.blocks
	return nil
}

// Abort discards a partially written file.
func (w *Writer) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	fs := w.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, b := range w.blocks {
		delete(fs.blocks, b.id)
	}
	delete(fs.files, w.path)
}

// WriteFile writes data as a new file in one call.
func (fs *FileSystem) WriteFile(path, writerNode string, data []byte) error {
	w, err := fs.Create(path, writerNode)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// Reader reads a file with locality-aware cost accounting. It implements
// io.Reader, io.ReaderAt, io.Seeker and io.Closer. Reader is not safe for
// concurrent use (create one per task thread, as HDFS clients do).
type Reader struct {
	fs     *FileSystem
	meta   *fileMeta
	client string
	pos    int64
	trace  obs.SpanContext
}

// SetTrace parents the reader's hdfs-read spans at the given trace position
// (a task attempt's span context), correlating filesystem reads into their
// query's profile. The zero value leaves spans uncorrelated.
func (r *Reader) SetTrace(sc obs.SpanContext) { r.trace = sc }

// Open opens a file for reading. clientNode is the cluster node the reading
// task runs on; pass "" for an external client.
func (fs *FileSystem) Open(path, clientNode string) (*Reader, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: open %s: no such file", path)
	}
	return &Reader{fs: fs, meta: f, client: clientNode}, nil
}

// Size returns the file's length in bytes.
func (r *Reader) Size() int64 {
	r.fs.mu.RLock()
	defer r.fs.mu.RUnlock()
	return r.meta.size
}

// Read reads from the current position.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	case io.SeekEnd:
		base = r.Size()
	default:
		return 0, fmt.Errorf("hdfs: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("hdfs: negative seek")
	}
	r.pos = base + offset
	return r.pos, nil
}

// Close releases the reader.
func (r *Reader) Close() error { return nil }

// ReadAt reads len(p) bytes at offset off, charging each traversed block's
// serving node (disk) and, for remote replicas, the network. With an
// observer attached (FileSystem.Observe) it emits one "hdfs-read" span per
// call carrying the file path and the local/remote byte split.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	fs := r.fs
	fs.mu.RLock()
	size := r.meta.size
	blocks := r.meta.blocks
	path := r.meta.path
	tracer := fs.tracer
	localCtr, remoteCtr, readNs := fs.mLocalBytes, fs.mRemoteBytes, fs.mReadNs
	fs.mu.RUnlock()

	observing := tracer.Enabled() || readNs != nil
	var start time.Time
	if observing {
		start = time.Now()
	}

	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	var done, localBytes, remoteBytes int64
	var pos int64
	var rerr error
	for _, b := range blocks {
		bStart, bEnd := pos, pos+b.size
		pos = bEnd
		if bEnd <= off || bStart >= off+want {
			continue
		}
		from := max64(off, bStart) - bStart
		to := min64(off+want, bEnd) - bStart
		n, local, err := r.readBlockRange(b, from, to, p[done:done+(to-from)])
		done += int64(n)
		if local {
			localBytes += int64(n)
		} else {
			remoteBytes += int64(n)
		}
		if err != nil {
			rerr = err
			break
		}
	}
	if localCtr != nil {
		localCtr.Add(localBytes)
		remoteCtr.Add(remoteBytes)
	}
	if observing {
		end := time.Now()
		if readNs != nil {
			readNs.ObserveDuration(end.Sub(start))
		}
		if tracer.Enabled() {
			s := obs.Span{
				Name:  obs.PhaseHDFSRead,
				Node:  r.client,
				Start: start,
				End:   end,
				Attrs: obs.Attrs("path", path,
					"local_bytes", strconv.FormatInt(localBytes, 10),
					"remote_bytes", strconv.FormatInt(remoteBytes, 10)),
			}
			r.trace.NewChild().Fill(&s, r.trace.Span)
			tracer.Emit(s)
		}
	}
	if rerr != nil {
		return int(done), rerr
	}
	if done < int64(len(p)) {
		return int(done), io.EOF
	}
	return int(done), nil
}

// readBlockRange copies block bytes [from, to) into dst and charges costs.
// The second return reports whether the bytes came from a local replica.
//
// The read loops over replicas until one serves the bytes: each iteration
// re-reads the replica set and liveness under the lock (a replica that was
// alive at selection time may die before it is charged — the loop simply
// moves on), consults the fault injector, and CRC-verifies the replica's
// bytes so corruption is detected and failed over rather than returned.
// Locality is re-derived per attempt so failover from a dead local replica
// is accounted as a remote read. The loop terminates because every
// iteration marks one replica attempted and never retries it.
func (r *Reader) readBlockRange(b *blockMeta, from, to int64, dst []byte) (int, bool, error) {
	fs := r.fs
	attempted := make(map[string]bool)
	var lastErr error
	for {
		fs.mu.RLock()
		injector := fs.injector
		lost := b.lost || len(b.replicas) == 0
		// Prefer the client's own replica; otherwise first unattempted
		// replica on a live node.
		var serving string
		for _, rep := range b.replicas {
			if rep == r.client && !attempted[rep] {
				serving = rep
				break
			}
		}
		if serving == "" {
			for _, rep := range b.replicas {
				if attempted[rep] {
					continue
				}
				if nd := fs.cluster.Node(rep); nd != nil && nd.IsAlive() {
					serving = rep
					break
				}
			}
		}
		data := b.data
		crc := b.crc
		override := b.corrupt[serving]
		fs.mu.RUnlock()

		if lost {
			return 0, false, fmt.Errorf("hdfs: block %d of %s: all replicas lost", b.id, r.meta.path)
		}
		if serving == "" {
			if lastErr != nil {
				return 0, false, fmt.Errorf("hdfs: block %d of %s: no live replica: %w", b.id, r.meta.path, lastErr)
			}
			return 0, false, fmt.Errorf("hdfs: block %d of %s: no live replica", b.id, r.meta.path)
		}
		attempted[serving] = true
		local := serving == r.client

		node := fs.cluster.Node(serving)
		if node == nil || !node.IsAlive() {
			lastErr = fmt.Errorf("hdfs: block %d of %s: replica on %s: node down", b.id, r.meta.path, serving)
			fs.noteFailover()
			continue
		}

		// Fault injection point: may return a transient error or kill nodes
		// as a side effect. Called with no locks held.
		if injector != nil {
			if err := injector.BeforeBlockRead(serving, b.id); err != nil {
				lastErr = fmt.Errorf("hdfs: block %d of %s: replica on %s: %w", b.id, r.meta.path, serving, err)
				fs.noteFailover()
				continue
			}
			// The injector may have killed the serving node.
			if !node.IsAlive() {
				lastErr = fmt.Errorf("hdfs: block %d of %s: replica on %s: node down", b.id, r.meta.path, serving)
				fs.noteFailover()
				continue
			}
		}

		// Verify the replica's bytes against the block checksum before
		// handing anything to the caller; a corrupted replica is dropped
		// from the replica set and the read fails over.
		replicaData := data
		if override != nil {
			replicaData = override
		}
		if crc32.ChecksumIEEE(replicaData) != crc {
			fs.metrics.CRCFailures.Add(1)
			fs.mu.RLock()
			crcCtr := fs.mCRCFailures
			fs.mu.RUnlock()
			if crcCtr != nil {
				crcCtr.Inc()
			}
			fs.reportBadReplica(b, serving, r.meta.path)
			lastErr = fmt.Errorf("hdfs: block %d of %s: replica on %s: checksum mismatch", b.id, r.meta.path, serving)
			fs.noteFailover()
			continue
		}

		if err := node.ChargeDiskRead(to-from, true); err != nil {
			lastErr = fmt.Errorf("hdfs: block %d of %s: replica on %s: %w", b.id, r.meta.path, serving, err)
			fs.noteFailover()
			continue
		}

		n := copy(dst, replicaData[from:to])
		if local {
			fs.metrics.LocalReads.Add(1)
			fs.metrics.LocalBytesRead.Add(int64(n))
		} else {
			fs.metrics.RemoteReads.Add(1)
			fs.metrics.RemoteBytesRead.Add(int64(n))
			// The transfer crosses the network; charge the client side when
			// the client is a cluster node, else the serving side. A dead
			// client cannot be failed over — the read itself has no home —
			// so that error is returned rather than retried.
			target := fs.cluster.Node(r.client)
			if target == nil {
				target = node
			}
			if err := target.ChargeNet(int64(n)); err != nil {
				return 0, local, err
			}
		}
		return n, local, nil
	}
}

// noteFailover records one replica failover in metrics and, when attached,
// the obs registry.
func (fs *FileSystem) noteFailover() {
	fs.metrics.Failovers.Add(1)
	fs.mu.RLock()
	ctr := fs.mFailovers
	fs.mu.RUnlock()
	if ctr != nil {
		ctr.Inc()
	}
}

// reportBadReplica removes a corrupted replica from the block and
// re-replicates from a surviving good copy (best effort: a failed
// re-replication leaves the block under-replicated for the next failure
// event to retry). If the bad replica was the last one, the block is lost.
func (fs *FileSystem) reportBadReplica(b *blockMeta, nodeID, path string) {
	fs.mu.Lock()
	removed := false
	keep := b.replicas[:0]
	for _, rep := range b.replicas {
		if rep == nodeID {
			removed = true
			continue
		}
		keep = append(keep, rep)
	}
	b.replicas = keep
	delete(b.corrupt, nodeID)
	gone := len(b.replicas) == 0
	if gone {
		b.lost = true
	}
	fs.mu.Unlock()
	if !removed || gone {
		return
	}
	if err := fs.rereplicate(b, path); err != nil {
		fs.noteRereplicationFailure()
	}
}

// ReadAll reads the entire file.
func (fs *FileSystem) ReadAll(path, clientNode string) ([]byte, error) {
	return fs.ReadAllTraced(path, clientNode, obs.SpanContext{})
}

// ReadAllTraced reads the entire file with the read span parented at the
// given trace position (a task attempt's context), so whole-file reads —
// the column-store load path — land inside their task in the profile.
func (fs *FileSystem) ReadAllTraced(path, clientNode string, sc obs.SpanContext) ([]byte, error) {
	r, err := fs.Open(path, clientNode)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	r.SetTrace(sc)
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
