package hdfs

import (
	"math/rand"
	"path"
	"sort"

	"clydesdale/internal/cluster"
)

// PlacementPolicy chooses the nodes that receive the replicas of a new
// block. Implementations must return up to repl distinct alive nodes; fewer
// is allowed when the cluster is small.
//
// This mirrors the pluggable block placement policy interface of HDFS 0.21
// that the paper calls out as the feature CIF depends on.
type PlacementPolicy interface {
	// ChooseTargets picks replica hosts for block blockIndex of filePath.
	// writer is the node the writing client runs on ("" for an external
	// client). alive is the current set of live nodes. rng is a
	// deterministic source the policy may use.
	ChooseTargets(filePath string, blockIndex int, repl int, writer string, alive []*cluster.Node, rng *rand.Rand) []*cluster.Node
}

// defaultPolicy reproduces stock HDFS behaviour: first replica on the
// writer's node when the writer is a cluster node, remaining replicas on
// random distinct nodes.
type defaultPolicy struct{}

func (defaultPolicy) ChooseTargets(filePath string, blockIndex, repl int, writer string, alive []*cluster.Node, rng *rand.Rand) []*cluster.Node {
	var out []*cluster.Node
	used := make(map[string]bool)
	for _, n := range alive {
		if n.ID() == writer {
			out = append(out, n)
			used[writer] = true
			break
		}
	}
	perm := rng.Perm(len(alive))
	for _, i := range perm {
		if len(out) >= repl {
			break
		}
		n := alive[i]
		if !used[n.ID()] {
			out = append(out, n)
			used[n.ID()] = true
		}
	}
	return out
}

// DefaultPolicy returns the stock HDFS placement policy.
func DefaultPolicy() PlacementPolicy { return defaultPolicy{} }

// ColocatePolicy places every block of every file that shares the same
// parent directory on the same replica set, chosen deterministically by
// rendezvous (highest-random-weight) hashing of the directory name over the
// live nodes. CIF stores each column of a table partition as a separate
// file inside the partition directory; this policy guarantees that a map
// task scheduled on a replica host finds *all* the columns of its partition
// locally — the co-location property §4.1 describes.
type ColocatePolicy struct{}

func (ColocatePolicy) ChooseTargets(filePath string, blockIndex, repl int, writer string, alive []*cluster.Node, rng *rand.Rand) []*cluster.Node {
	dir := path.Dir(filePath)
	type scored struct {
		n *cluster.Node
		w uint64
	}
	scores := make([]scored, 0, len(alive))
	for _, n := range alive {
		scores = append(scores, scored{n: n, w: rendezvousWeight(dir, n.ID())})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].w != scores[j].w {
			return scores[i].w > scores[j].w
		}
		return scores[i].n.ID() < scores[j].n.ID()
	})
	if repl > len(scores) {
		repl = len(scores)
	}
	out := make([]*cluster.Node, repl)
	for i := 0; i < repl; i++ {
		out[i] = scores[i].n
	}
	return out
}

// rendezvousWeight hashes (group, node) with FNV-1a.
func rendezvousWeight(group, node string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(group); i++ {
		h ^= uint64(group[i])
		h *= prime
	}
	h ^= '/'
	h *= prime
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime
	}
	return h
}
