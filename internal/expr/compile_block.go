package expr

import (
	"fmt"

	"clydesdale/internal/records"
)

// The block compilation path mirrors the row path but reads typed column
// vectors directly, with no per-value boxing. This is the execution side of
// B-CIF block iteration: one virtual call per block instead of per row, and
// tight loops over typed slices.

// CompileBlock compiles e against the schema into a block evaluator.
func CompileBlock(e Expr, s *records.Schema) (BlockEval, error) {
	switch e := e.(type) {
	case ColExpr:
		i := s.Index(e.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q in %v", e.Name, s)
		}
		return func(b *records.RowBlock, row int) records.Value { return b.Col(i).Value(row) }, nil
	case ConstExpr:
		v := e.Val
		return func(*records.RowBlock, int) records.Value { return v }, nil
	case ArithExpr:
		n, err := CompileBlockNum(e, s)
		if err != nil {
			return nil, err
		}
		return func(b *records.RowBlock, row int) records.Value {
			return records.Float(n(b, row))
		}, nil
	default:
		return nil, fmt.Errorf("expr: cannot block-compile %T", e)
	}
}

// CompileBlockNum compiles e into a numeric block evaluator.
func CompileBlockNum(e Expr, s *records.Schema) (BlockNum, error) {
	switch e := e.(type) {
	case ColExpr:
		i := s.Index(e.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q in %v", e.Name, s)
		}
		switch s.Field(i).Kind {
		case records.KindInt64:
			return func(b *records.RowBlock, row int) float64 { return float64(b.Col(i).Ints[row]) }, nil
		case records.KindFloat64:
			return func(b *records.RowBlock, row int) float64 { return b.Col(i).Floats[row] }, nil
		default:
			return nil, fmt.Errorf("expr: column %q is %s, not numeric", e.Name, s.Field(i).Kind)
		}
	case ConstExpr:
		if e.Val.Kind() != records.KindInt64 && e.Val.Kind() != records.KindFloat64 {
			return nil, fmt.Errorf("expr: constant %v is not numeric", e.Val)
		}
		v := e.Val.Float64()
		return func(*records.RowBlock, int) float64 { return v }, nil
	case ArithExpr:
		l, err := CompileBlockNum(e.L, s)
		if err != nil {
			return nil, err
		}
		r, err := CompileBlockNum(e.R, s)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(b *records.RowBlock, row int) float64 { return arith(op, l(b, row), r(b, row)) }, nil
	default:
		return nil, fmt.Errorf("expr: cannot block-compile %T as numeric", e)
	}
}

// CompileBlockPred compiles p against the schema into a block predicate.
// Comparisons between an int64/float64/string column and a constant use
// specialized unboxed paths; everything else falls back to boxed evaluation.
func CompileBlockPred(p Pred, s *records.Schema) (BlockPred, error) {
	switch p := p.(type) {
	case TruePred:
		return func(*records.RowBlock, int) bool { return true }, nil
	case CmpPred:
		if fast, ok, err := fastColConstCmp(p, s); err != nil {
			return nil, err
		} else if ok {
			return fast, nil
		}
		l, err := CompileBlock(p.L, s)
		if err != nil {
			return nil, err
		}
		r, err := CompileBlock(p.R, s)
		if err != nil {
			return nil, err
		}
		op := p.Op
		return func(b *records.RowBlock, row int) bool {
			return cmpHolds(op, l(b, row).Compare(r(b, row)))
		}, nil
	case BetweenPred:
		if col, ok := p.E.(ColExpr); ok {
			i := s.Index(col.Name)
			if i < 0 {
				return nil, fmt.Errorf("expr: unknown column %q in %v", col.Name, s)
			}
			switch s.Field(i).Kind {
			case records.KindInt64:
				if p.Lo.Kind() == records.KindInt64 && p.Hi.Kind() == records.KindInt64 {
					lo, hi := p.Lo.Int64(), p.Hi.Int64()
					return func(b *records.RowBlock, row int) bool {
						v := b.Col(i).Ints[row]
						return v >= lo && v <= hi
					}, nil
				}
			case records.KindString:
				if p.Lo.Kind() == records.KindString && p.Hi.Kind() == records.KindString {
					lo, hi := p.Lo.Str(), p.Hi.Str()
					return func(b *records.RowBlock, row int) bool {
						v := b.Col(i).Strs[row]
						return v >= lo && v <= hi
					}, nil
				}
			}
		}
		e, err := CompileBlock(p.E, s)
		if err != nil {
			return nil, err
		}
		lo, hi := p.Lo, p.Hi
		return func(b *records.RowBlock, row int) bool {
			v := e(b, row)
			return v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		}, nil
	case InPred:
		if col, ok := p.E.(ColExpr); ok {
			i := s.Index(col.Name)
			if i < 0 {
				return nil, fmt.Errorf("expr: unknown column %q in %v", col.Name, s)
			}
			if s.Field(i).Kind == records.KindString {
				set := make(map[string]bool, len(p.Vals))
				for _, v := range p.Vals {
					if v.Kind() != records.KindString {
						return nil, fmt.Errorf("expr: IN list mixes kinds for %q", col.Name)
					}
					set[v.Str()] = true
				}
				return func(b *records.RowBlock, row int) bool { return set[b.Col(i).Strs[row]] }, nil
			}
			if s.Field(i).Kind == records.KindInt64 {
				set := make(map[int64]bool, len(p.Vals))
				for _, v := range p.Vals {
					if v.Kind() != records.KindInt64 {
						return nil, fmt.Errorf("expr: IN list mixes kinds for %q", col.Name)
					}
					set[v.Int64()] = true
				}
				return func(b *records.RowBlock, row int) bool { return set[b.Col(i).Ints[row]] }, nil
			}
		}
		e, err := CompileBlock(p.E, s)
		if err != nil {
			return nil, err
		}
		set := make(map[records.Value]bool, len(p.Vals))
		for _, v := range p.Vals {
			set[v] = true
		}
		return func(b *records.RowBlock, row int) bool { return set[e(b, row)] }, nil
	case AndPred:
		parts, err := compileBlockParts(p.Parts, s)
		if err != nil {
			return nil, err
		}
		return func(b *records.RowBlock, row int) bool {
			for _, q := range parts {
				if !q(b, row) {
					return false
				}
			}
			return true
		}, nil
	case OrPred:
		parts, err := compileBlockParts(p.Parts, s)
		if err != nil {
			return nil, err
		}
		return func(b *records.RowBlock, row int) bool {
			for _, q := range parts {
				if q(b, row) {
					return true
				}
			}
			return false
		}, nil
	case NotPred:
		q, err := CompileBlockPred(p.P, s)
		if err != nil {
			return nil, err
		}
		return func(b *records.RowBlock, row int) bool { return !q(b, row) }, nil
	default:
		return nil, fmt.Errorf("expr: cannot block-compile predicate %T", p)
	}
}

func compileBlockParts(parts []Pred, s *records.Schema) ([]BlockPred, error) {
	out := make([]BlockPred, len(parts))
	for i, p := range parts {
		q, err := CompileBlockPred(p, s)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// fastColConstCmp recognizes "col OP const" and compiles an unboxed
// comparator. The second return reports whether the shape matched.
func fastColConstCmp(p CmpPred, s *records.Schema) (BlockPred, bool, error) {
	col, okL := p.L.(ColExpr)
	c, okR := p.R.(ConstExpr)
	if !okL || !okR {
		return nil, false, nil
	}
	i := s.Index(col.Name)
	if i < 0 {
		return nil, false, fmt.Errorf("expr: unknown column %q in %v", col.Name, s)
	}
	op := p.Op
	switch s.Field(i).Kind {
	case records.KindInt64:
		if c.Val.Kind() != records.KindInt64 {
			return nil, false, nil
		}
		cv := c.Val.Int64()
		return func(b *records.RowBlock, row int) bool {
			v := b.Col(i).Ints[row]
			switch {
			case v < cv:
				return cmpHolds(op, -1)
			case v > cv:
				return cmpHolds(op, 1)
			}
			return cmpHolds(op, 0)
		}, true, nil
	case records.KindString:
		if c.Val.Kind() != records.KindString {
			return nil, false, nil
		}
		cv := c.Val.Str()
		return func(b *records.RowBlock, row int) bool {
			v := b.Col(i).Strs[row]
			switch {
			case v < cv:
				return cmpHolds(op, -1)
			case v > cv:
				return cmpHolds(op, 1)
			}
			return cmpHolds(op, 0)
		}, true, nil
	}
	return nil, false, nil
}
