package expr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clydesdale/internal/records"
)

var testSchema = records.NewSchema(
	records.F("qty", records.KindInt64),
	records.F("price", records.KindFloat64),
	records.F("region", records.KindString),
	records.F("discount", records.KindInt64),
)

func testRow(qty int64, price float64, region string, discount int64) records.Record {
	return records.Make(testSchema,
		records.Int(qty), records.Float(price), records.Str(region), records.Int(discount))
}

func TestCompileArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want float64
	}{
		{Mul(Col("price"), Col("discount")), 10 * 3},
		{Sub(Col("price"), Col("qty")), 10 - 5},
		{Add(Col("qty"), ConstInt(2)), 7},
		{Div(Col("price"), ConstFloat(4)), 2.5},
	}
	r := testRow(5, 10, "ASIA", 3)
	for _, c := range cases {
		f, err := CompileNum(c.e, testSchema)
		if err != nil {
			t.Fatalf("%v: %v", c.e, err)
		}
		if got := f(r); got != c.want {
			t.Errorf("%v = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(Col("missing"), testSchema); err == nil {
		t.Error("expected error for missing column")
	}
	if _, err := CompileNum(Col("region"), testSchema); err == nil {
		t.Error("expected error for non-numeric column")
	}
	if _, err := CompileNum(ConstStr("x"), testSchema); err == nil {
		t.Error("expected error for string constant as numeric")
	}
	if _, err := CompilePred(Eq(Col("missing"), ConstInt(1)), testSchema); err == nil {
		t.Error("expected error for missing column in predicate")
	}
	if _, err := CompileBlockPred(Eq(Col("missing"), ConstInt(1)), testSchema); err == nil {
		t.Error("expected block error for missing column in predicate")
	}
}

func TestCompilePredicates(t *testing.T) {
	cases := []struct {
		p    Pred
		want bool
	}{
		{True(), true},
		{Eq(Col("region"), ConstStr("ASIA")), true},
		{Eq(Col("region"), ConstStr("EUROPE")), false},
		{Ne(Col("region"), ConstStr("EUROPE")), true},
		{Lt(Col("qty"), ConstInt(6)), true},
		{Le(Col("qty"), ConstInt(5)), true},
		{Gt(Col("qty"), ConstInt(5)), false},
		{Ge(Col("qty"), ConstInt(5)), true},
		{Between(Col("discount"), records.Int(1), records.Int(3)), true},
		{Between(Col("discount"), records.Int(4), records.Int(6)), false},
		{In(Col("region"), records.Str("ASIA"), records.Str("EUROPE")), true},
		{In(Col("region"), records.Str("AFRICA")), false},
		{And(Eq(Col("region"), ConstStr("ASIA")), Lt(Col("qty"), ConstInt(10))), true},
		{And(Eq(Col("region"), ConstStr("ASIA")), Lt(Col("qty"), ConstInt(1))), false},
		{Or(Eq(Col("region"), ConstStr("AFRICA")), Lt(Col("qty"), ConstInt(10))), true},
		{Or(), false},
		{And(), true},
		{Not(True()), false},
	}
	r := testRow(5, 10, "ASIA", 3)
	for _, c := range cases {
		f, err := CompilePred(c.p, testSchema)
		if err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		if got := f(r); got != c.want {
			t.Errorf("%v = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestBlockRowAgreement is the core property: block-compiled and
// row-compiled evaluation must agree on every row.
func TestBlockRowAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	regions := []string{"ASIA", "EUROPE", "AMERICA", "AFRICA", "MIDDLE EAST"}
	block := records.NewRowBlock(testSchema, 256)
	var rows []records.Record
	for i := 0; i < 256; i++ {
		r := testRow(rng.Int63n(50), float64(rng.Intn(1000))/4, regions[rng.Intn(len(regions))], rng.Int63n(11))
		rows = append(rows, r)
		block.AppendRow(r)
	}
	preds := []Pred{
		True(),
		Eq(Col("region"), ConstStr("ASIA")),
		Ne(Col("region"), ConstStr("ASIA")),
		Lt(Col("qty"), ConstInt(25)),
		Ge(Col("qty"), ConstInt(25)),
		Between(Col("discount"), records.Int(1), records.Int(3)),
		Between(Col("region"), records.Str("AMERICA"), records.Str("EUROPE")),
		In(Col("region"), records.Str("ASIA"), records.Str("AFRICA")),
		In(Col("qty"), records.Int(1), records.Int(2), records.Int(3)),
		And(Lt(Col("qty"), ConstInt(40)), Gt(Col("discount"), ConstInt(2))),
		Or(Eq(Col("region"), ConstStr("ASIA")), Between(Col("qty"), records.Int(10), records.Int(20))),
		Not(Eq(Col("region"), ConstStr("ASIA"))),
		Gt(Col("price"), ConstFloat(100)),
	}
	for _, p := range preds {
		rowF, err := CompilePred(p, testSchema)
		if err != nil {
			t.Fatalf("row compile %v: %v", p, err)
		}
		blockF, err := CompileBlockPred(p, testSchema)
		if err != nil {
			t.Fatalf("block compile %v: %v", p, err)
		}
		for i, r := range rows {
			if rowF(r) != blockF(block, i) {
				t.Errorf("%v: row %d disagrees (row=%v block=%v)", p, i, rowF(r), blockF(block, i))
			}
		}
	}
	exprs := []Expr{
		Mul(Col("price"), Col("discount")),
		Sub(Col("price"), Col("qty")),
		Add(Add(Col("qty"), Col("discount")), ConstInt(1)),
	}
	for _, e := range exprs {
		rowF, err := CompileNum(e, testSchema)
		if err != nil {
			t.Fatalf("row compile %v: %v", e, err)
		}
		blockF, err := CompileBlockNum(e, testSchema)
		if err != nil {
			t.Fatalf("block compile %v: %v", e, err)
		}
		for i, r := range rows {
			if rowF(r) != blockF(block, i) {
				t.Errorf("%v: row %d disagrees", e, i)
			}
		}
	}
}

func TestBlockEvalBoxed(t *testing.T) {
	block := records.NewRowBlock(testSchema, 2)
	block.AppendRow(testRow(5, 10, "ASIA", 3))
	f, err := CompileBlock(Col("region"), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if f(block, 0).Str() != "ASIA" {
		t.Error("boxed block eval failed")
	}
	g, err := CompileBlock(Mul(Col("qty"), ConstInt(2)), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if g(block, 0).Float64() != 10 {
		t.Error("boxed block arith failed")
	}
	c, err := CompileBlock(ConstStr("k"), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if c(block, 0).Str() != "k" {
		t.Error("const block eval failed")
	}
}

func TestColumnsOf(t *testing.T) {
	got := ColumnsOf(
		[]Expr{Mul(Col("price"), Col("discount")), Col("price")},
		[]Pred{And(Eq(Col("region"), ConstStr("ASIA")), Lt(Col("qty"), ConstInt(10)))},
	)
	want := []string{"price", "discount", "region", "qty"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ColumnsOf = %v, want %v", got, want)
	}
}

func TestPredString(t *testing.T) {
	p := And(
		Eq(Col("region"), ConstStr("ASIA")),
		Between(Col("d"), records.Int(1), records.Int(3)),
		In(Col("r"), records.Str("a")),
		Or(Not(True()), Lt(Col("q"), ConstInt(2))),
	)
	s := p.String()
	for _, frag := range []string{"region = 'ASIA'", "BETWEEN 1 AND 3", "IN (a)", "NOT (TRUE)", "q < 2"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	e := Div(Sub(Col("a"), Col("b")), ConstFloat(2))
	if e.String() != "((a - b) / 2)" {
		t.Errorf("expr String = %q", e.String())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// Property: for random int rows, the specialized fast comparator agrees with
// generic Value comparison.
func TestFastCmpQuick(t *testing.T) {
	s := records.NewSchema(records.F("x", records.KindInt64))
	f := func(x, c int64) bool {
		b := records.NewRowBlock(s, 1)
		b.AppendRow(records.Make(s, records.Int(x)))
		for _, op := range []func(Expr, Expr) Pred{Eq, Ne, Lt, Le, Gt, Ge} {
			p := op(Col("x"), ConstInt(c))
			rowF, err1 := CompilePred(p, s)
			blockF, err2 := CompileBlockPred(p, s)
			if err1 != nil || err2 != nil {
				return false
			}
			if rowF(b.Row(0)) != blockF(b, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
