package expr

import "clydesdale/internal/records"

// Interval evaluation: deciding, from per-column [min,max] summaries alone,
// whether a predicate can hold for any row of a data block. This is the
// zone-map side of partition pruning — the storage layer records min/max per
// partition and the scan planner drops partitions whose summaries prove the
// predicate false everywhere (RangeNever). The logic is three-valued: a
// summary usually cannot decide a predicate exactly, so the safe default is
// RangeMaybe and only certain outcomes are reported as Never/Always.

// RangeResult is the three-valued outcome of interval evaluation.
type RangeResult int8

const (
	// RangeNever means no row in the summarized data can satisfy the
	// predicate — the partition may be skipped.
	RangeNever RangeResult = iota
	// RangeMaybe means the summary cannot decide; the data must be scanned.
	RangeMaybe
	// RangeAlways means every (non-null) row satisfies the predicate.
	RangeAlways
)

func (r RangeResult) String() string {
	switch r {
	case RangeNever:
		return "never"
	case RangeAlways:
		return "always"
	default:
		return "maybe"
	}
}

// ColRange summarizes one column of a partition: the minimum and maximum
// values present and whether any nulls occur. Min/Max must be of the
// column's kind (they are ignored, yielding Maybe, when kinds mismatch the
// predicate's constants).
type ColRange struct {
	Min, Max records.Value
	HasNulls bool
}

// RangeSource resolves a column name to its range summary; the second
// return reports whether a summary exists for the column.
type RangeSource func(col string) (ColRange, bool)

// PredRange evaluates p over column range summaries. RangeNever guarantees
// no row of the summarized data satisfies p (sound for pruning); RangeAlways
// guarantees every row with non-null inputs does. Unknown columns,
// unsupported shapes, and kind mismatches all degrade to RangeMaybe, never
// to a wrong certain answer.
func PredRange(p Pred, src RangeSource) RangeResult {
	switch p := p.(type) {
	case TruePred:
		return RangeAlways
	case CmpPred:
		return cmpRange(p, src)
	case BetweenPred:
		cr, ok := colRangeOf(p.E, src)
		if !ok {
			return RangeMaybe
		}
		lo, hi := p.Lo, p.Hi
		if cr.Min.Kind() != lo.Kind() || cr.Max.Kind() != hi.Kind() {
			return RangeMaybe
		}
		if cr.Max.Compare(lo) < 0 || cr.Min.Compare(hi) > 0 {
			return RangeNever
		}
		if cr.Min.Compare(lo) >= 0 && cr.Max.Compare(hi) <= 0 {
			return demoteForNulls(cr)
		}
		return RangeMaybe
	case InPred:
		cr, ok := colRangeOf(p.E, src)
		if !ok {
			return RangeMaybe
		}
		anyInside := false
		for _, v := range p.Vals {
			if cr.Min.Kind() != v.Kind() {
				return RangeMaybe
			}
			if v.Compare(cr.Min) >= 0 && v.Compare(cr.Max) <= 0 {
				anyInside = true
			}
		}
		if !anyInside {
			return RangeNever
		}
		// A single-point column contained in the IN set holds everywhere.
		if cr.Min.Equal(cr.Max) {
			return demoteForNulls(cr)
		}
		return RangeMaybe
	case AndPred:
		out := RangeAlways
		for _, q := range p.Parts {
			switch PredRange(q, src) {
			case RangeNever:
				return RangeNever
			case RangeMaybe:
				out = RangeMaybe
			}
		}
		return out
	case OrPred:
		if len(p.Parts) == 0 {
			return RangeNever
		}
		out := RangeNever
		for _, q := range p.Parts {
			switch PredRange(q, src) {
			case RangeAlways:
				return RangeAlways
			case RangeMaybe:
				out = RangeMaybe
			}
		}
		return out
	case NotPred:
		switch PredRange(p.P, src) {
		case RangeNever:
			// NOT over an everywhere-false operand holds everywhere only for
			// non-null inputs; nulls were already folded into the operand's
			// result conservatively, so stay at Maybe unless the operand is
			// null-free. Soundness of pruning needs only the Never case below.
			return RangeMaybe
		case RangeAlways:
			return RangeNever
		default:
			return RangeMaybe
		}
	default:
		return RangeMaybe
	}
}

// cmpRange handles col OP const and const OP col; anything else is Maybe.
func cmpRange(p CmpPred, src RangeSource) RangeResult {
	op := p.Op
	cr, ok := colRangeOf(p.L, src)
	var c ConstExpr
	if ok {
		cc, isConst := p.R.(ConstExpr)
		if !isConst {
			return RangeMaybe
		}
		c = cc
	} else {
		cr, ok = colRangeOf(p.R, src)
		cc, isConst := p.L.(ConstExpr)
		if !ok || !isConst {
			return RangeMaybe
		}
		c = cc
		op = flipCmp(op)
	}
	if cr.Min.Kind() != c.Val.Kind() {
		return RangeMaybe
	}
	lo, hi := cr.Min.Compare(c.Val), cr.Max.Compare(c.Val)
	var res RangeResult
	switch op {
	case CmpEq:
		switch {
		case hi < 0 || lo > 0:
			res = RangeNever
		case lo == 0 && hi == 0:
			res = RangeAlways
		default:
			res = RangeMaybe
		}
	case CmpNe:
		switch {
		case lo == 0 && hi == 0:
			res = RangeNever
		case hi < 0 || lo > 0:
			res = RangeAlways
		default:
			res = RangeMaybe
		}
	case CmpLt:
		switch {
		case hi < 0:
			res = RangeAlways
		case lo >= 0:
			res = RangeNever
		default:
			res = RangeMaybe
		}
	case CmpLe:
		switch {
		case hi <= 0:
			res = RangeAlways
		case lo > 0:
			res = RangeNever
		default:
			res = RangeMaybe
		}
	case CmpGt:
		switch {
		case lo > 0:
			res = RangeAlways
		case hi <= 0:
			res = RangeNever
		default:
			res = RangeMaybe
		}
	case CmpGe:
		switch {
		case lo >= 0:
			res = RangeAlways
		case hi < 0:
			res = RangeNever
		default:
			res = RangeMaybe
		}
	default:
		return RangeMaybe
	}
	if res == RangeAlways {
		return demoteForNulls(cr)
	}
	return res
}

// colRangeOf resolves a bare column reference to its range summary.
func colRangeOf(e Expr, src RangeSource) (ColRange, bool) {
	col, ok := e.(ColExpr)
	if !ok {
		return ColRange{}, false
	}
	cr, ok := src(col.Name)
	if !ok || cr.Min.IsNull() || cr.Max.IsNull() {
		return ColRange{}, false
	}
	return cr, ok
}

// demoteForNulls turns Always into Maybe when the column contains nulls
// (a null input makes the comparison unknown, not true).
func demoteForNulls(cr ColRange) RangeResult {
	if cr.HasNulls {
		return RangeMaybe
	}
	return RangeAlways
}

// flipCmp mirrors an operator across its operands: const OP col becomes
// col flip(OP) const.
func flipCmp(op CmpOp) CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default:
		return op
	}
}
