// Package expr provides the small expression and predicate language used by
// both query engines: column references, constants, arithmetic, comparisons,
// BETWEEN, IN, and boolean combinators. Expressions are compiled against a
// schema into closures; separate row-oriented and block-oriented (vectorized
// row index) compilations back the two execution paths the paper ablates.
package expr

import (
	"fmt"
	"strings"

	"clydesdale/internal/records"
)

// Expr is a scalar expression tree node.
type Expr interface {
	// Columns appends the column names the expression reads to dst.
	Columns(dst []string) []string
	String() string
}

// Pred is a boolean predicate tree node.
type Pred interface {
	Columns(dst []string) []string
	String() string
}

// ColExpr references a named column.
type ColExpr struct{ Name string }

// ConstExpr wraps a constant value.
type ConstExpr struct{ Val records.Value }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

// ArithExpr combines two numeric sub-expressions.
type ArithExpr struct {
	Op   ArithOp
	L, R Expr
}

// Col references the named column.
func Col(name string) Expr { return ColExpr{Name: name} }

// ConstInt wraps an integer constant.
func ConstInt(v int64) Expr { return ConstExpr{Val: records.Int(v)} }

// ConstFloat wraps a float constant.
func ConstFloat(v float64) Expr { return ConstExpr{Val: records.Float(v)} }

// ConstStr wraps a string constant.
func ConstStr(v string) Expr { return ConstExpr{Val: records.Str(v)} }

// Add returns l + r.
func Add(l, r Expr) Expr { return ArithExpr{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return ArithExpr{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return ArithExpr{Op: OpMul, L: l, R: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return ArithExpr{Op: OpDiv, L: l, R: r} }

func (e ColExpr) Columns(dst []string) []string { return append(dst, e.Name) }
func (e ColExpr) String() string                { return e.Name }

func (e ConstExpr) Columns(dst []string) []string { return dst }
func (e ConstExpr) String() string {
	if e.Val.Kind() == records.KindString {
		return "'" + e.Val.Str() + "'"
	}
	return e.Val.String()
}

func (e ArithExpr) Columns(dst []string) []string { return e.R.Columns(e.L.Columns(dst)) }
func (e ArithExpr) String() string {
	op := map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"}[e.Op]
	return fmt.Sprintf("(%s %s %s)", e.L, op, e.R)
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	return map[CmpOp]string{CmpEq: "=", CmpNe: "<>", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">="}[op]
}

// CmpPred compares two expressions.
type CmpPred struct {
	Op   CmpOp
	L, R Expr
}

// BetweenPred tests lo <= e <= hi (inclusive, SQL semantics).
type BetweenPred struct {
	E      Expr
	Lo, Hi records.Value
}

// InPred tests membership of e in a constant set.
type InPred struct {
	E    Expr
	Vals []records.Value
}

// AndPred is the conjunction of its parts; empty means true.
type AndPred struct{ Parts []Pred }

// OrPred is the disjunction of its parts; empty means false.
type OrPred struct{ Parts []Pred }

// NotPred negates its operand.
type NotPred struct{ P Pred }

// TruePred always holds.
type TruePred struct{}

// Eq returns l = r.
func Eq(l, r Expr) Pred { return CmpPred{Op: CmpEq, L: l, R: r} }

// Ne returns l <> r.
func Ne(l, r Expr) Pred { return CmpPred{Op: CmpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Pred { return CmpPred{Op: CmpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Pred { return CmpPred{Op: CmpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Pred { return CmpPred{Op: CmpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Pred { return CmpPred{Op: CmpGe, L: l, R: r} }

// Between returns lo <= e <= hi.
func Between(e Expr, lo, hi records.Value) Pred { return BetweenPred{E: e, Lo: lo, Hi: hi} }

// In returns e IN (vals...).
func In(e Expr, vals ...records.Value) Pred { return InPred{E: e, Vals: vals} }

// And returns the conjunction of parts.
func And(parts ...Pred) Pred { return AndPred{Parts: parts} }

// Or returns the disjunction of parts.
func Or(parts ...Pred) Pred { return OrPred{Parts: parts} }

// Not negates p.
func Not(p Pred) Pred { return NotPred{P: p} }

// True returns the always-true predicate.
func True() Pred { return TruePred{} }

func (p CmpPred) Columns(dst []string) []string { return p.R.Columns(p.L.Columns(dst)) }
func (p CmpPred) String() string                { return fmt.Sprintf("%s %s %s", p.L, p.Op, p.R) }

func (p BetweenPred) Columns(dst []string) []string { return p.E.Columns(dst) }
func (p BetweenPred) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", p.E, p.Lo, p.Hi)
}

func (p InPred) Columns(dst []string) []string { return p.E.Columns(dst) }
func (p InPred) String() string {
	parts := make([]string, len(p.Vals))
	for i, v := range p.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", p.E, strings.Join(parts, ", "))
}

func (p AndPred) Columns(dst []string) []string {
	for _, q := range p.Parts {
		dst = q.Columns(dst)
	}
	return dst
}
func (p AndPred) String() string { return joinPred(p.Parts, " AND ") }

func (p OrPred) Columns(dst []string) []string {
	for _, q := range p.Parts {
		dst = q.Columns(dst)
	}
	return dst
}
func (p OrPred) String() string { return joinPred(p.Parts, " OR ") }

func (p NotPred) Columns(dst []string) []string { return p.P.Columns(dst) }
func (p NotPred) String() string                { return "NOT (" + p.P.String() + ")" }

func (p TruePred) Columns(dst []string) []string { return dst }
func (p TruePred) String() string                { return "TRUE" }

func joinPred(parts []Pred, sep string) string {
	ss := make([]string, len(parts))
	for i, p := range parts {
		ss[i] = "(" + p.String() + ")"
	}
	return strings.Join(ss, sep)
}

// ColumnsOf returns the deduplicated column names read by the given
// expressions and predicates, in first-appearance order.
func ColumnsOf(exprs []Expr, preds []Pred) []string {
	var raw []string
	for _, e := range exprs {
		if e != nil {
			raw = e.Columns(raw)
		}
	}
	for _, p := range preds {
		if p != nil {
			raw = p.Columns(raw)
		}
	}
	seen := make(map[string]bool, len(raw))
	out := raw[:0]
	for _, c := range raw {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
