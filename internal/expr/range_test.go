package expr

import (
	"math/rand"
	"testing"

	"clydesdale/internal/records"
)

func srcOf(m map[string]ColRange) RangeSource {
	return func(col string) (ColRange, bool) {
		cr, ok := m[col]
		return cr, ok
	}
}

func intRange(lo, hi int64) ColRange {
	return ColRange{Min: records.Int(lo), Max: records.Int(hi)}
}

func strRange(lo, hi string) ColRange {
	return ColRange{Min: records.Str(lo), Max: records.Str(hi)}
}

func TestPredRangeCases(t *testing.T) {
	src := srcOf(map[string]ColRange{
		"a": intRange(10, 20),
		"b": intRange(5, 5),
		"s": strRange("dog", "fox"),
		"n": {Min: records.Int(0), Max: records.Int(9), HasNulls: true},
	})
	cases := []struct {
		name string
		p    Pred
		want RangeResult
	}{
		{"eq-below", Eq(Col("a"), ConstInt(5)), RangeNever},
		{"eq-above", Eq(Col("a"), ConstInt(25)), RangeNever},
		{"eq-inside", Eq(Col("a"), ConstInt(15)), RangeMaybe},
		{"eq-point", Eq(Col("b"), ConstInt(5)), RangeAlways},
		{"ne-point", Ne(Col("b"), ConstInt(5)), RangeNever},
		{"ne-outside", Ne(Col("a"), ConstInt(99)), RangeAlways},
		{"lt-all", Lt(Col("a"), ConstInt(21)), RangeAlways},
		{"lt-none", Lt(Col("a"), ConstInt(10)), RangeNever},
		{"lt-some", Lt(Col("a"), ConstInt(15)), RangeMaybe},
		{"le-boundary", Le(Col("a"), ConstInt(20)), RangeAlways},
		{"gt-none", Gt(Col("a"), ConstInt(20)), RangeNever},
		{"ge-all", Ge(Col("a"), ConstInt(10)), RangeAlways},
		{"flipped-const-left", Lt(ConstInt(25), Col("a")), RangeNever},
		{"flipped-const-left-always", Gt(ConstInt(25), Col("a")), RangeAlways},
		{"between-never", Between(Col("a"), records.Int(30), records.Int(40)), RangeNever},
		{"between-always", Between(Col("a"), records.Int(0), records.Int(99)), RangeAlways},
		{"between-maybe", Between(Col("a"), records.Int(15), records.Int(40)), RangeMaybe},
		{"in-never", In(Col("a"), records.Int(1), records.Int(99)), RangeNever},
		{"in-maybe", In(Col("a"), records.Int(15)), RangeMaybe},
		{"in-point-always", In(Col("b"), records.Int(5), records.Int(7)), RangeAlways},
		{"str-never", Eq(Col("s"), ConstStr("zebra")), RangeNever},
		{"str-between-always", Between(Col("s"), records.Str("aaa"), records.Str("zzz")), RangeAlways},
		{"unknown-col", Eq(Col("zz"), ConstInt(1)), RangeMaybe},
		{"kind-mismatch", Eq(Col("a"), ConstStr("x")), RangeMaybe},
		{"and-never-wins", And(Lt(Col("a"), ConstInt(99)), Gt(Col("a"), ConstInt(50))), RangeNever},
		{"and-always", And(Lt(Col("a"), ConstInt(99)), Ge(Col("a"), ConstInt(0))), RangeAlways},
		{"or-always-wins", Or(Gt(Col("a"), ConstInt(50)), Lt(Col("a"), ConstInt(99))), RangeAlways},
		{"or-all-never", Or(Gt(Col("a"), ConstInt(50)), Lt(Col("a"), ConstInt(5))), RangeNever},
		{"or-maybe", Or(Gt(Col("a"), ConstInt(50)), Lt(Col("a"), ConstInt(15))), RangeMaybe},
		{"not-always-is-never", Not(Lt(Col("a"), ConstInt(99))), RangeNever},
		{"not-never-is-maybe", Not(Gt(Col("a"), ConstInt(50))), RangeMaybe},
		{"true", True(), RangeAlways},
		{"nulls-demote-always", Le(Col("n"), ConstInt(9)), RangeMaybe},
		{"nulls-keep-never", Gt(Col("n"), ConstInt(9)), RangeNever},
		{"non-col-shape", Eq(Add(Col("a"), ConstInt(1)), ConstInt(5)), RangeMaybe},
	}
	for _, c := range cases {
		if got := PredRange(c.p, src); got != c.want {
			t.Errorf("%s: PredRange(%s) = %s, want %s", c.name, c.p, got, c.want)
		}
	}
}

// TestPredRangeSoundness cross-checks interval evaluation against row
// evaluation: for random integer predicates and random blocks of rows,
// RangeNever must imply no row matches and RangeAlways must imply all do.
func TestPredRangeSoundness(t *testing.T) {
	schema := records.NewSchema(records.F("x", records.KindInt64), records.F("y", records.KindInt64))
	rng := rand.New(rand.NewSource(7))
	randPred := func() Pred {
		col := Col([]string{"x", "y"}[rng.Intn(2)])
		c := int64(rng.Intn(40))
		switch rng.Intn(6) {
		case 0:
			return Eq(col, ConstInt(c))
		case 1:
			return Lt(col, ConstInt(c))
		case 2:
			return Ge(col, ConstInt(c))
		case 3:
			return Between(col, records.Int(c), records.Int(c+int64(rng.Intn(10))))
		case 4:
			return In(col, records.Int(c), records.Int(c+3))
		default:
			return Not(Lt(col, ConstInt(c)))
		}
	}
	for trial := 0; trial < 500; trial++ {
		p := And(randPred(), Or(randPred(), randPred()))
		n := rng.Intn(20) + 1
		rows := make([]records.Record, n)
		minX, maxX := int64(1<<62), int64(-1<<62)
		minY, maxY := int64(1<<62), int64(-1<<62)
		for i := range rows {
			x, y := int64(rng.Intn(40)), int64(rng.Intn(40))
			rows[i] = records.Make(schema, records.Int(x), records.Int(y))
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
		src := srcOf(map[string]ColRange{"x": intRange(minX, maxX), "y": intRange(minY, maxY)})
		eval, err := CompilePred(p, schema)
		if err != nil {
			t.Fatal(err)
		}
		matches := 0
		for _, r := range rows {
			if eval(r) {
				matches++
			}
		}
		switch PredRange(p, src) {
		case RangeNever:
			if matches != 0 {
				t.Fatalf("trial %d: RangeNever but %d/%d rows match %s", trial, matches, n, p)
			}
		case RangeAlways:
			if matches != n {
				t.Fatalf("trial %d: RangeAlways but only %d/%d rows match %s", trial, matches, n, p)
			}
		}
	}
}
