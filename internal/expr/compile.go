package expr

import (
	"fmt"

	"clydesdale/internal/records"
)

// RowEval evaluates an expression against one record.
type RowEval func(records.Record) records.Value

// RowPred evaluates a predicate against one record.
type RowPred func(records.Record) bool

// BlockEval evaluates an expression against row i of a block without boxing
// the row into a Record.
type BlockEval func(b *records.RowBlock, i int) records.Value

// BlockPred evaluates a predicate against row i of a block.
type BlockPred func(b *records.RowBlock, i int) bool

// BlockNum evaluates a numeric expression against row i of a block,
// returning a float64 directly (the aggregation fast path).
type BlockNum func(b *records.RowBlock, i int) float64

// RowNum evaluates a numeric expression against one record, returning a
// float64 directly.
type RowNum func(records.Record) float64

// Compile compiles e against the schema into a row evaluator.
func Compile(e Expr, s *records.Schema) (RowEval, error) {
	switch e := e.(type) {
	case ColExpr:
		i := s.Index(e.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q in %v", e.Name, s)
		}
		return func(r records.Record) records.Value { return r.At(i) }, nil
	case ConstExpr:
		v := e.Val
		return func(records.Record) records.Value { return v }, nil
	case ArithExpr:
		l, err := CompileNum(e.L, s)
		if err != nil {
			return nil, err
		}
		r, err := CompileNum(e.R, s)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(rec records.Record) records.Value {
			return records.Float(arith(op, l(rec), r(rec)))
		}, nil
	default:
		return nil, fmt.Errorf("expr: cannot compile %T", e)
	}
}

// CompileNum compiles e into a numeric row evaluator. Column references must
// be int64 or float64.
func CompileNum(e Expr, s *records.Schema) (RowNum, error) {
	switch e := e.(type) {
	case ColExpr:
		i := s.Index(e.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q in %v", e.Name, s)
		}
		switch s.Field(i).Kind {
		case records.KindInt64:
			return func(r records.Record) float64 { return float64(r.At(i).Int64()) }, nil
		case records.KindFloat64:
			return func(r records.Record) float64 { return r.At(i).Float64() }, nil
		default:
			return nil, fmt.Errorf("expr: column %q is %s, not numeric", e.Name, s.Field(i).Kind)
		}
	case ConstExpr:
		if e.Val.Kind() != records.KindInt64 && e.Val.Kind() != records.KindFloat64 {
			return nil, fmt.Errorf("expr: constant %v is not numeric", e.Val)
		}
		v := e.Val.Float64()
		return func(records.Record) float64 { return v }, nil
	case ArithExpr:
		l, err := CompileNum(e.L, s)
		if err != nil {
			return nil, err
		}
		r, err := CompileNum(e.R, s)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(rec records.Record) float64 { return arith(op, l(rec), r(rec)) }, nil
	default:
		return nil, fmt.Errorf("expr: cannot compile %T as numeric", e)
	}
}

func arith(op ArithOp, l, r float64) float64 {
	switch op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		return l / r
	}
	return 0
}

// CompilePred compiles p against the schema into a row predicate.
func CompilePred(p Pred, s *records.Schema) (RowPred, error) {
	switch p := p.(type) {
	case TruePred:
		return func(records.Record) bool { return true }, nil
	case CmpPred:
		l, err := Compile(p.L, s)
		if err != nil {
			return nil, err
		}
		r, err := Compile(p.R, s)
		if err != nil {
			return nil, err
		}
		op := p.Op
		return func(rec records.Record) bool {
			return cmpHolds(op, l(rec).Compare(r(rec)))
		}, nil
	case BetweenPred:
		e, err := Compile(p.E, s)
		if err != nil {
			return nil, err
		}
		lo, hi := p.Lo, p.Hi
		return func(rec records.Record) bool {
			v := e(rec)
			return v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		}, nil
	case InPred:
		e, err := Compile(p.E, s)
		if err != nil {
			return nil, err
		}
		set := make(map[records.Value]bool, len(p.Vals))
		for _, v := range p.Vals {
			set[v] = true
		}
		return func(rec records.Record) bool { return set[e(rec)] }, nil
	case AndPred:
		parts, err := compileParts(p.Parts, s)
		if err != nil {
			return nil, err
		}
		return func(rec records.Record) bool {
			for _, q := range parts {
				if !q(rec) {
					return false
				}
			}
			return true
		}, nil
	case OrPred:
		parts, err := compileParts(p.Parts, s)
		if err != nil {
			return nil, err
		}
		return func(rec records.Record) bool {
			for _, q := range parts {
				if q(rec) {
					return true
				}
			}
			return false
		}, nil
	case NotPred:
		q, err := CompilePred(p.P, s)
		if err != nil {
			return nil, err
		}
		return func(rec records.Record) bool { return !q(rec) }, nil
	default:
		return nil, fmt.Errorf("expr: cannot compile predicate %T", p)
	}
}

func compileParts(parts []Pred, s *records.Schema) ([]RowPred, error) {
	out := make([]RowPred, len(parts))
	for i, p := range parts {
		q, err := CompilePred(p, s)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}
