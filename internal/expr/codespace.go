package expr

import (
	"math"

	"clydesdale/internal/records"
)

// Code-space compilation support: the scan translates per-row predicates on
// dictionary-encoded columns into per-dictionary-entry decisions (evaluate
// the predicate once per distinct value, then test raw codes against the
// resulting bitmap), and range predicates on delta-encoded columns into
// bounds checked during decode. The helpers here are the expression-side
// half of that: splitting a predicate into independently-pushable
// conjuncts, evaluating a single-column predicate over one value, and
// extracting an integer interval from a range-shaped conjunct.

// Conjuncts flattens p into its top-level AND factors. A nil predicate
// yields nil; a non-AND predicate yields itself. Each factor can be pushed
// into the scan independently because AND commutes with per-row filtering.
func Conjuncts(p Pred) []Pred {
	if p == nil {
		return nil
	}
	a, ok := p.(AndPred)
	if !ok {
		return []Pred{p}
	}
	var out []Pred
	for _, q := range a.Parts {
		out = append(out, Conjuncts(q)...)
	}
	return out
}

// SingleColumn returns the only column p reads, or ok=false when p reads
// zero or more than one distinct column.
func SingleColumn(p Pred) (string, bool) {
	cols := ColumnsOf(nil, []Pred{p})
	if len(cols) != 1 {
		return "", false
	}
	return cols[0], true
}

// CompileValuePred compiles p — a predicate reading only col — into a
// function of a single value of the column's kind. Evaluating the closure
// over each dictionary entry yields a code bitmap exactly equivalent to
// evaluating p per row, because predicates are pure functions of the value.
// The closure is safe for concurrent use — one compiled predicate is shared
// by every scan task planning against the same input — so it builds its
// one-value record per call rather than mutating captured scratch; it runs
// once per dictionary entry (≤ the dictionary cap), never per row, so the
// allocation doesn't matter.
func CompileValuePred(p Pred, col string, kind records.Kind) (func(records.Value) bool, error) {
	s := records.NewSchema(records.F(col, kind))
	rp, err := CompilePred(p, s)
	if err != nil {
		return nil, err
	}
	return func(v records.Value) bool {
		return rp(records.Make(s, v))
	}, nil
}

// IntRangeOf extracts the closed interval [lo, hi] that p imposes on col,
// for range-shaped predicates over integer constants: BETWEEN and
// column-vs-constant comparisons. ok=false for any other shape (IN,
// disjunctions, arithmetic over the column, non-integer bounds) — callers
// fall back to per-row evaluation.
func IntRangeOf(p Pred, col string) (lo, hi int64, ok bool) {
	isCol := func(e Expr) bool {
		c, isc := e.(ColExpr)
		return isc && c.Name == col
	}
	intConst := func(e Expr) (int64, bool) {
		c, isc := e.(ConstExpr)
		if !isc || c.Val.Kind() != records.KindInt64 {
			return 0, false
		}
		return c.Val.Int64(), true
	}
	switch p := p.(type) {
	case BetweenPred:
		if !isCol(p.E) || p.Lo.Kind() != records.KindInt64 || p.Hi.Kind() != records.KindInt64 {
			return 0, 0, false
		}
		return p.Lo.Int64(), p.Hi.Int64(), true
	case CmpPred:
		op := p.Op
		var c int64
		if isCol(p.L) {
			v, isInt := intConst(p.R)
			if !isInt {
				return 0, 0, false
			}
			c = v
		} else if isCol(p.R) {
			v, isInt := intConst(p.L)
			if !isInt {
				return 0, 0, false
			}
			c = v
			// Flip "const OP col" into "col OP' const".
			switch op {
			case CmpLt:
				op = CmpGt
			case CmpLe:
				op = CmpGe
			case CmpGt:
				op = CmpLt
			case CmpGe:
				op = CmpLe
			}
		} else {
			return 0, 0, false
		}
		switch op {
		case CmpEq:
			return c, c, true
		case CmpLe:
			return math.MinInt64, c, true
		case CmpGe:
			return c, math.MaxInt64, true
		case CmpLt:
			if c == math.MinInt64 {
				return 0, 0, false
			}
			return math.MinInt64, c - 1, true
		case CmpGt:
			if c == math.MaxInt64 {
				return 0, 0, false
			}
			return c + 1, math.MaxInt64, true
		}
	}
	return 0, 0, false
}
