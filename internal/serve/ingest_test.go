package serve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"clydesdale/internal/colstore"
	"clydesdale/internal/core"
	"clydesdale/internal/mr"
	"clydesdale/internal/records"
	"clydesdale/internal/refexec"
	"clydesdale/internal/results"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

// lineorderAt returns generated fact row i with lo_orderdate overridden —
// the retention tests need a batch whose every date provably predates a
// cutoff.
func lineorderAt(gen *ssb.Generator, i int64, datekey int64) records.Record {
	r := gen.Lineorder(i)
	idx := ssb.LineorderSchema.Index("lo_orderdate")
	vals := make([]records.Value, r.Len())
	for j := 0; j < r.Len(); j++ {
		vals[j] = r.At(j)
	}
	vals[idx] = records.Int(datekey)
	return records.Make(ssb.LineorderSchema, vals...)
}

// emitRange emits generated lineorder rows [lo, hi); datekey >= 0 overrides
// every row's lo_orderdate.
func emitRange(gen *ssb.Generator, lo, hi int64, datekey int64) func(emit func(records.Record) error) error {
	return func(emit func(records.Record) error) error {
		for i := lo; i < hi; i++ {
			r := gen.Lineorder(i)
			if datekey >= 0 {
				r = lineorderAt(gen, i, datekey)
			}
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}
}

// refWith runs the reference executor over the generator plus extra fact
// rows.
func refWith(t *testing.T, e *env, q *core.Query, extras ...[]records.Record) *results.ResultSet {
	t.Helper()
	cat := e.lay.Catalog()
	l, err := core.LogicalOf(q, cat)
	if err != nil {
		t.Fatalf("%s: %v", q.Name, err)
	}
	rs, err := refexec.RunLogical(l, func(table string, fn func(records.Record) error) error {
		if err := e.gen.Each(table, fn); err != nil {
			return err
		}
		if table == cat.FactName {
			for _, batch := range extras {
				for _, r := range batch {
					if err := fn(r); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s ref: %v", q.Name, err)
	}
	return rs
}

func materialize(gen *ssb.Generator, lo, hi int64, datekey int64) []records.Record {
	var out []records.Record
	emitRange(gen, lo, hi, datekey)(func(r records.Record) error {
		out = append(out, r)
		return nil
	})
	return out
}

// TestServeDimRollInRebuildsTables is the regression test for the stale
// serving caches: before the fix, a dimension roll-in left the cross-query
// table cache serving hash tables built from the old dimension contents and
// the result cache serving old sums. RollIn must evict both — observable as
// the build counter incrementing on the next query instead of a warm hit —
// and every evicted table's memory reservation must come back.
func TestServeDimRollInRebuildsTables(t *testing.T) {
	const workers = 3
	e := newEnv(t, workers, 0.002, mr.Options{})
	// Pruning off so builds are exactly tables x nodes, as in the headline
	// concurrency test.
	s := e.session(serve.Options{MaxConcurrent: 4, Engine: core.Options{NoScanPruning: true}})

	q, err := ssb.QueryByName("Q2.1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := refexec.Run(e.gen, q)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		t.Helper()
		rs, _, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if ok, why := results.Equivalent(rs, want, 1e-9); !ok {
			t.Fatal(why)
		}
	}

	run()
	cold := s.Stats().Builds
	if cold == 0 {
		t.Fatal("first query built no tables")
	}
	// Warm: the result cache answers, nothing rebuilds.
	run()
	if got := s.Stats(); got.Builds != cold || got.ResultHits == 0 {
		t.Fatalf("warm re-run: builds %d (want %d), result hits %d", got.Builds, cold, got.ResultHits)
	}

	// Roll duplicate rows into a dimension Q2.1 joins. Duplicates keep the
	// answer identical, which isolates what this test is about: the caches
	// must *rebuild*, not merely happen to be right.
	n, err := s.RollIn("supplier", func(emit func(records.Record) error) error {
		for i := int64(0); i < 4; i++ {
			if err := emit(e.gen.Supplier(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("rolled in %d rows", n)
	}
	st := s.Stats()
	if st.RollIns != 1 || st.RollInRows != 4 {
		t.Fatalf("roll-in stats = %+v", st)
	}
	if st.TableInvalidations == 0 {
		t.Fatal("roll-in invalidated no cached tables")
	}
	if st.ResultInvalidations == 0 {
		t.Fatal("roll-in invalidated no cached results")
	}

	// Next query must rebuild the rolled-in dimension's table on every node
	// (the other dimensions stay warm) and recompute rather than hit the
	// result cache.
	hitsBefore := st.ResultHits
	run()
	st = s.Stats()
	if wantBuilds := cold + workers; st.Builds != wantBuilds {
		t.Fatalf("post-roll-in builds = %d, want %d (stale tables served?)", st.Builds, wantBuilds)
	}
	if st.ResultHits != hitsBefore {
		t.Fatal("post-roll-in query hit the invalidated result cache")
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	e.checkNoLeak(t)
}

// TestServeSnapshotIsolationOracle is the acceptance oracle: all 13 SSB
// queries run concurrently with a fact roll-in, a compaction pass, a second
// (backdated) roll-in, and date retention — under -race via make check.
// Every query's result must equal the reference executor over one of the
// consistent table states (base; base+A; base+A+B), never a blend: the
// partition-list snapshot is pinned at plan time and every swap is atomic.
func TestServeSnapshotIsolationOracle(t *testing.T) {
	e := newEnv(t, 3, 0.002, mr.Options{})
	s := e.session(serve.Options{MaxConcurrent: 8, IngestPartitionRows: 200})
	defer s.Close()

	gen := e.gen
	base := gen.LineorderRows()
	const (
		batchA   = 1000 // fresh rows, natural dates
		batchB   = 500  // backdated rows, all on the retention boundary
		oldDate  = 19920101
		cutoff   = 19920102
		statesN  = 3
		queryGap = 3 * time.Millisecond
	)
	batchARows := materialize(gen, base, base+batchA, -1)
	batchBRows := materialize(gen, base+batchA, base+batchA+batchB, oldDate)

	// Reference results for every consistent state each query may observe.
	queries := ssb.Queries()
	wants := make([][statesN]*results.ResultSet, len(queries))
	for i, q := range queries {
		wants[i][0] = refWith(t, e, q)
		wants[i][1] = refWith(t, e, q, batchARows)
		wants[i][2] = refWith(t, e, q, batchARows, batchBRows)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	sets := make([]*results.ResultSet, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *core.Query) {
			defer wg.Done()
			sets[i], _, errs[i] = s.Query(context.Background(), q)
		}(i, q)
		time.Sleep(queryGap) // stagger so plan times straddle the mutations
	}

	// The mutation sequence, racing the queries. Every step is atomic, so
	// a query planned at any instant sees exactly one of the three states.
	if _, err := s.RollIn("lineorder", emitRange(gen, base, base+batchA, -1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(queryGap)
	// Compact batch A's small partitions (base partitions are full-size);
	// the row multiset is unchanged, so no fourth state appears.
	res, err := s.CompactFact(colstore.CompactOptions{MinRows: 500, TargetRows: 1000, ClusterBy: "lo_orderdate"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != batchA || len(res.Retired) != 5 {
		t.Fatalf("compaction = %+v, want all %d batch-A rows from 5 small partitions", res, batchA)
	}
	time.Sleep(queryGap)
	if _, err := s.RollIn("lineorder", emitRange(gen, base+batchA, base+batchA+batchB, oldDate)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(queryGap)
	// Retention: exactly batch B's partitions have Max(lo_orderdate) below
	// the cutoff; every base partition straddles it or postdates it.
	retired, err := s.RetainFact("lo_orderdate", cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 3 { // 500 rows at 200 per partition
		t.Fatalf("retention retired %v, want batch B's 3 partitions", retired)
	}
	wg.Wait()

	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("%s: %v", q.Name, errs[i])
		}
		matched := false
		for st := 0; st < statesN; st++ {
			if ok, _ := results.Equivalent(sets[i], wants[i][st], 1e-9); ok {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s matches no consistent table state (torn snapshot?):\n%s", q.Name, sets[i])
		}
	}

	// Quiesced end state: base + A, batch B retired, nothing uncommitted.
	var rows int64
	if err := colstore.ScanCIFTable(e.fs, e.lay.Catalog().FactDir, "", func(records.Record) error {
		rows++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != base+batchA {
		t.Fatalf("final table has %d rows, want %d", rows, base+batchA)
	}
	for i, q := range queries {
		rs, _, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if ok, why := results.Equivalent(rs, wants[i][1], 1e-9); !ok {
			t.Errorf("%s after retention: %s", q.Name, why)
		}
	}

	st := s.Stats()
	if st.RollIns != 2 || st.Compactions != 1 || st.PartitionsRetired != 5+3 {
		t.Errorf("ingest stats = %+v", st)
	}
}
