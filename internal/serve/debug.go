package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// DebugServer is the session's live observability surface: an HTTP server
// exposing
//
//	/metrics   the registry in Prometheus text exposition format
//	/profilez  recent query profiles from the flight recorder
//	/slo       per-query-class latency percentiles and shed/error rates
//	/debug/pprof/*  the standard Go profiler endpoints
//
// It serves on its own mux (nothing leaks onto http.DefaultServeMux) and is
// read-only: scraping it never mutates session state, so two scrapes with no
// intervening queries return identical bytes.
type DebugServer struct {
	session *Session
	mux     *http.ServeMux
	srv     *http.Server
	ln      net.Listener
}

// NewDebugServer wires the debug endpoints for a session. Call Start to
// listen, or mount Handler on a server of your own.
func NewDebugServer(s *Session) *DebugServer {
	d := &DebugServer{session: s, mux: http.NewServeMux()}
	d.mux.HandleFunc("/metrics", d.handleMetrics)
	d.mux.HandleFunc("/profilez", d.handleProfilez)
	d.mux.HandleFunc("/slo", d.handleSLO)
	d.mux.HandleFunc("/debug/pprof/", pprof.Index)
	d.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	d.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	d.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	d.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return d
}

// Handler returns the debug mux (for tests and embedding).
func (d *DebugServer) Handler() http.Handler { return d.mux }

// Start listens on addr (e.g. "localhost:0") and serves in the background.
func (d *DebugServer) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	d.ln = ln
	d.srv = &http.Server{Handler: d.mux}
	go d.srv.Serve(ln)
	return nil
}

// Addr returns the listening address after Start.
func (d *DebugServer) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the server, if started.
func (d *DebugServer) Close() error {
	if d.srv == nil {
		return nil
	}
	return d.srv.Close()
}

func (d *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := d.session.Metrics()
	if m == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	// Refresh the live serve gauges (queue depth, in-flight, reserved
	// bytes, cache residency) so the scrape reflects this instant;
	// re-setting a gauge to its current value keeps scrapes idempotent.
	d.session.syncGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WriteProm(w)
}

// handleProfilez renders the flight recorder: text reports by default,
// ?format=json for the machine shape, ?trace=<id> for one profile.
func (d *DebugServer) handleProfilez(w http.ResponseWriter, r *http.Request) {
	rec := d.session.Profiles()
	if rec == nil {
		http.Error(w, "profiling disabled (ProfileDepth < 0)", http.StatusServiceUnavailable)
		return
	}
	if trace := r.URL.Query().Get("trace"); trace != "" {
		p := rec.Get(trace)
		if p == nil {
			http.Error(w, "no such trace in the flight recorder", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		p.WriteJSON(w)
		return
	}
	profiles := rec.Recent()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(profiles)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "flight recorder: %d profiles retained of %d recorded\n\n",
		len(profiles), rec.Total())
	for i, p := range profiles {
		if i > 0 {
			fmt.Fprintln(w, strings.Repeat("-", 72))
		}
		p.WriteText(w)
	}
}

// sloClass is one query class's row in the /slo body. Latency quantiles are
// read straight from the registry histograms ("serve.slo.<class>.latency_ns"),
// so /slo and /metrics can never disagree.
type sloClass struct {
	Class     string `json:"class"`
	Queries   int64  `json:"queries"`
	Completed int64  `json:"completed"`
	Errors    int64  `json:"errors"`
	Shed      int64  `json:"shed"`
	P50Ns     int64  `json:"p50_ns"`
	P90Ns     int64  `json:"p90_ns"`
	P99Ns     int64  `json:"p99_ns"`
	MaxNs     int64  `json:"max_ns"`
}

const sloPrefix = "serve.slo."

func (d *DebugServer) handleSLO(w http.ResponseWriter, _ *http.Request) {
	m := d.session.Metrics()
	if m == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	snap := m.Snapshot()
	classes := make(map[string]*sloClass)
	get := func(class string) *sloClass {
		c, ok := classes[class]
		if !ok {
			c = &sloClass{Class: class}
			classes[class] = c
		}
		return c
	}
	for name, v := range snap.Counters {
		rest, ok := strings.CutPrefix(name, sloPrefix)
		if !ok {
			continue
		}
		class, kind, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		switch kind {
		case "queries":
			get(class).Queries = v
		case "errors":
			get(class).Errors = v
		case "shed":
			get(class).Shed = v
		}
	}
	for name, h := range snap.Histograms {
		rest, ok := strings.CutPrefix(name, sloPrefix)
		if !ok || !strings.HasSuffix(rest, ".latency_ns") {
			continue
		}
		c := get(strings.TrimSuffix(rest, ".latency_ns"))
		c.Completed = h.Count
		c.P50Ns, c.P90Ns, c.P99Ns = int64(h.P50), int64(h.P90), int64(h.P99)
		c.MaxNs = int64(h.Max)
	}
	out := make([]*sloClass, 0, len(classes))
	for _, c := range classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		GeneratedAt time.Time   `json:"generated_at"`
		Classes     []*sloClass `json:"classes"`
	}{time.Now().UTC(), out})
}
