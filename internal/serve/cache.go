package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clydesdale/internal/cluster"
	"clydesdale/internal/core"
	"clydesdale/internal/mr"
	"clydesdale/internal/obs"
)

// tableCache keeps built dimension hash tables resident per node across
// queries, implementing core.TableProvider. It generalizes the per-job
// nodeTableGroup singleflight: concurrent misses on one (node, key) still
// build once, but the winner's table outlives the job and serves every
// later query until evicted. Residency is accounted against the node's
// memory (each cached table holds a cluster reservation) and bounded by a
// per-node budget with LRU eviction of unpinned entries.
//
// Cache identity is generation-stamped: invalidateDim bumps a per-dimension
// generation, instantly unmapping every key built from the old contents —
// queries after a dimension roll-in rebuild from the new master copy
// instead of probing stale tables.
type tableCache struct {
	budget int64 // per-node resident-bytes bound

	mu    sync.Mutex
	nodes map[string]*nodeCache
	gens  map[string]uint64 // dimDir → generation, bumped by invalidateDim
	clock uint64            // LRU clock; ticks on every acquire/release

	hits          atomic.Int64
	misses        atomic.Int64
	builds        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// keyFor is the cache identity of one table build: dimension directory,
// the directory's current roll-in generation, and the build fingerprint
// (join key, predicate, aux projection). Two lookups with equal keys probe
// byte-identical tables; bumping the generation retires every outstanding
// key at once without touching the entries that carry them.
func (c *tableCache) keyFor(dimDir string, spec *core.DimSpec) string {
	c.mu.Lock()
	g := c.gens[dimDir]
	c.mu.Unlock()
	return keyAt(dimDir, g, spec)
}

func keyAt(dimDir string, gen uint64, spec *core.DimSpec) string {
	return fmt.Sprintf("%s\x00%d\x00%s", dimDir, gen, spec.Fingerprint())
}

type nodeCache struct {
	entries  map[string]*cacheEntry
	resident int64
	// dead marks the node as killed: its reservations were freed with the
	// node's memory, so finished entries were dropped and any in-flight
	// build must not publish (it would cache a table whose reservation no
	// longer exists). Cleared if the node is seen alive again.
	dead bool
}

// cacheEntry is one node's copy of one table. done closes when the build
// finishes (singleflight); pins counts tasks currently probing the table,
// which eviction must skip.
type cacheEntry struct {
	key     string // the entry's key in its nodeCache, for self-removal
	done    chan struct{}
	ht      *core.DimHashTable
	err     error
	bytes   int64
	pins    int
	lastUse uint64
	// doomed marks an entry invalidated while pinned or still building: the
	// generation bump already unmapped its key for new lookups, but queries
	// that resolved the key before the invalidation may keep probing it (a
	// consistent pre-roll-in read). The last unpin evicts it.
	doomed bool
}

func newTableCache(budget int64) *tableCache {
	return &tableCache{budget: budget, nodes: make(map[string]*nodeCache), gens: make(map[string]uint64)}
}

// NewTableProvider returns a standalone cross-query dimension-table cache
// implementing core.TableProvider, for embedders (benchmark harnesses,
// tools) that want resident hash tables across jobs without a full serving
// Session. Unlike a Session's cache it is not wired to the cluster death
// watcher, so it suits single-process use where nodes are not killed.
// budget bounds resident table bytes per node (<= 0 means 256 MiB).
func NewTableProvider(budget int64) core.TableProvider {
	if budget <= 0 {
		budget = 256 << 20
	}
	return newTableCache(budget)
}

// AcquireDimTable implements core.TableProvider: return the node's resident
// table for the spec, building (and reserving node memory for) it on first
// use. The returned release unpins the table; the bytes stay resident —
// and reserved — until LRU eviction or Close.
func (c *tableCache) AcquireDimTable(ctx *mr.TaskContext, dimDir string, spec *core.DimSpec) (*core.DimHashTable, func(), error) {
	node := ctx.Node()
	key := c.keyFor(dimDir, spec)

	c.mu.Lock()
	nc, ok := c.nodes[node.ID()]
	if !ok {
		nc = &nodeCache{entries: make(map[string]*cacheEntry)}
		c.nodes[node.ID()] = nc
	}
	if nc.dead && node.IsAlive() {
		nc.dead = false // node revived; its cache restarts empty
	}
	if e, ok := nc.entries[key]; ok {
		e.pins++
		c.clock++
		e.lastUse = c.clock
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The build this caller piggybacked on failed; the winner already
			// removed the entry, so only the pin needs undoing.
			c.mu.Lock()
			e.pins--
			c.mu.Unlock()
			return nil, nil, e.err
		}
		c.hits.Add(1)
		return e.ht, func() { c.unpin(node, nc, e) }, nil
	}
	e := &cacheEntry{key: key, done: make(chan struct{}), pins: 1}
	c.clock++
	e.lastUse = c.clock
	nc.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	start := time.Now()
	ht, err := core.BuildDimHashTable(ctx.FS, node, dimDir, spec)
	if err == nil {
		// Make room under the budget before taking the node reservation, so
		// a full cache cycles instead of spuriously OOMing the build.
		c.mu.Lock()
		c.evictLocked(node, nc, ht.MemBytes)
		c.mu.Unlock()
		err = node.ReserveMemory(ht.MemBytes)
	}
	if err != nil {
		e.err = err
		c.mu.Lock()
		delete(nc.entries, key) // failed builds are not cached; next query retries
		c.mu.Unlock()
		close(e.done)
		return nil, nil, err
	}
	e.ht = ht
	e.bytes = ht.MemBytes
	c.mu.Lock()
	if nc.dead {
		// The node was killed between the reservation and publication: the
		// reservation died with the node's memory, so caching the table
		// would let later warm probes use a freed reservation. Fail the
		// build instead; dropNode already handled the finished entries.
		delete(nc.entries, key)
		e.err = cluster.ErrNodeDown
		c.mu.Unlock()
		close(e.done)
		return nil, nil, e.err
	}
	nc.resident += e.bytes
	c.mu.Unlock()
	close(e.done)
	c.builds.Add(1)
	ctx.Counters.Add(core.CtrHashTablesBuilt, 1)
	ctx.Counters.Add(core.CtrHashBuildNanos, time.Since(start).Nanoseconds())
	ctx.Span(obs.PhaseHashBuild, start, "table", spec.Table, "cache", "miss")
	return ht, func() { c.unpin(node, nc, e) }, nil
}

func (c *tableCache) unpin(node *cluster.Node, nc *nodeCache, e *cacheEntry) {
	c.mu.Lock()
	e.pins--
	c.clock++
	e.lastUse = c.clock
	if e.doomed && e.pins == 0 {
		// Last reader of an invalidated table: its key is already unmapped
		// for new lookups, so drop it now and return the reservation.
		if cur, ok := nc.entries[e.key]; ok && cur == e {
			delete(nc.entries, e.key)
			nc.resident -= e.bytes
			if !nc.dead {
				node.ReleaseMemory(e.bytes)
			}
			c.evictions.Add(1)
		}
	}
	c.evictLocked(node, nc, 0)
	c.mu.Unlock()
}

// invalidateDim retires every cached table built from dimDir, in three
// moves: the generation bump unmaps all their keys for future lookups (a
// later query can only rebuild from the new dimension contents), finished
// unpinned entries are evicted immediately with their reservations
// released, and pinned or still-building entries are marked doomed — the
// queries that already resolved their key keep probing them (a consistent
// pre-roll-in read) and the last unpin evicts them. nodeOf resolves node
// IDs for releasing reservations. Returns entries evicted or doomed.
func (c *tableCache) invalidateDim(dimDir string, nodeOf func(string) *cluster.Node) int {
	prefix := dimDir + "\x00"
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[dimDir]++
	n := 0
	for id, nc := range c.nodes {
		for k, e := range nc.entries {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			n++
			c.invalidations.Add(1)
			finished := false
			select {
			case <-e.done:
				finished = true
			default:
			}
			if !finished || e.pins > 0 {
				e.doomed = true
				continue
			}
			delete(nc.entries, k)
			if e.err != nil {
				continue
			}
			nc.resident -= e.bytes
			if !nc.dead {
				if node := nodeOf(id); node != nil {
					node.ReleaseMemory(e.bytes)
				}
			}
			c.evictions.Add(1)
		}
	}
	return n
}

// evictLocked drops unpinned tables, least recently used first, until the
// node's resident bytes plus the incoming bytes fit the budget. Pinned or
// still-building entries are skipped, so eviction can legitimately fail to
// reach the budget under heavy concurrency — admission control is what
// keeps that from spiraling.
func (c *tableCache) evictLocked(node *cluster.Node, nc *nodeCache, incoming int64) {
	for nc.resident+incoming > c.budget {
		var victimKey string
		var victim *cacheEntry
		for k, e := range nc.entries {
			select {
			case <-e.done:
			default:
				continue // still building
			}
			if e.err != nil || e.pins > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(nc.entries, victimKey)
		nc.resident -= victim.bytes
		node.ReleaseMemory(victim.bytes)
		c.evictions.Add(1)
	}
}

// dropNode evicts every finished cache entry of a dead node and marks the
// node dead so in-flight builds fail instead of publishing. The freed
// reservations are not returned via ReleaseMemory: Kill already zeroed the
// node's memory accounting, and double-releasing would corrupt it after a
// revive. Entries still pinned by in-flight probes are dropped too — those
// probes are doomed anyway (every charge on the dead node fails) and their
// later unpin of a removed entry is harmless.
func (c *tableCache) dropNode(nodeID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nc, ok := c.nodes[nodeID]
	if !ok {
		return
	}
	nc.dead = true
	for k, e := range nc.entries {
		select {
		case <-e.done:
		default:
			continue // in-flight build; it observes nc.dead and fails itself
		}
		delete(nc.entries, k)
		nc.resident -= e.bytes
		c.evictions.Add(1)
	}
}

// residentEverywhere reports whether the key's table is already built and
// resident on every listed node — the admission controller then charges
// nothing for that dimension.
func (c *tableCache) residentEverywhere(key string, nodeIDs []string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range nodeIDs {
		nc, ok := c.nodes[id]
		if !ok {
			return false
		}
		e, ok := nc.entries[key]
		if !ok {
			return false
		}
		select {
		case <-e.done:
		default:
			return false
		}
		if e.err != nil {
			return false
		}
	}
	return true
}

// residentBytes sums the resident table bytes across all nodes.
func (c *tableCache) residentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, nc := range c.nodes {
		total += nc.resident
	}
	return total
}

// evictAll releases every cached table's node reservation; Close calls it
// after in-flight queries drain, so no entry should be pinned or building.
func (c *tableCache) evictAll(nodeOf func(string) *cluster.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, nc := range c.nodes {
		node := nodeOf(id)
		for k, e := range nc.entries {
			select {
			case <-e.done:
			default:
				continue
			}
			if e.err == nil && node != nil {
				node.ReleaseMemory(e.bytes)
			}
			nc.resident -= e.bytes
			delete(nc.entries, k)
			c.evictions.Add(1)
		}
	}
}
