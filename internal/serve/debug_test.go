package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"clydesdale/internal/mr"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

// debugEnv runs a few queries through a session and returns it with its
// debug handler mounted on an httptest server.
func debugEnv(t *testing.T, names ...string) (*serve.Session, *httptest.Server) {
	t.Helper()
	e := newEnv(t, 3, 0.002, mr.Options{})
	sess := e.session(serve.Options{MaxConcurrent: 4})
	t.Cleanup(func() { sess.Close() })
	for _, name := range names {
		q, err := ssb.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sess.Query(context.Background(), q); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	srv := httptest.NewServer(serve.NewDebugServer(sess).Handler())
	t.Cleanup(srv.Close)
	return sess, srv
}

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$`)
	promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]`)
)

// TestDebugMetricsEndpoint checks /metrics speaks the Prometheus text
// exposition format — every line is a TYPE comment or a well-formed sample
// — and that an idle server is deterministic: two scrapes with no queries
// in between return identical bytes.
func TestDebugMetricsEndpoint(t *testing.T) {
	_, srv := debugEnv(t, "Q1.1", "Q2.1")

	body, ctype := get(t, srv.URL+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ctype)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("suspiciously short exposition:\n%s", body)
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !promTypeRe.MatchString(line) {
				t.Errorf("bad comment line: %q", line)
			}
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
		}
	}
	for _, want := range []string{
		"serve_slo_flight_1_queries_total",
		"serve_slo_flight_2_queries_total",
		"mr_map_duration_ns{quantile=\"0.99\"}",
		"mr_map_duration_ns_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	again, _ := get(t, srv.URL+"/metrics")
	if !bytes.Equal([]byte(body), []byte(again)) {
		t.Error("two idle scrapes differ byte-for-byte")
	}
}

// TestDebugMetricsLiveGauges checks the serving layer's live state reaches
// /metrics: admission levels (idle at scrape time), table-cache residency,
// and the result cache's entry count and bytes for the two cached queries.
func TestDebugMetricsLiveGauges(t *testing.T) {
	_, srv := debugEnv(t, "Q1.1", "Q2.1")
	body, _ := get(t, srv.URL+"/metrics")

	gauge := func(name string) int64 {
		t.Helper()
		re := regexp.MustCompile(`(?m)^` + name + ` (-?\d+)$`)
		m := re.FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("exposition missing gauge %s:\n%s", name, body)
		}
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	// Nothing is queued or running at scrape time.
	for _, name := range []string{
		"serve_admission_queue_depth",
		"serve_admission_in_flight",
		"serve_admission_reserved_bytes",
	} {
		if v := gauge(name); v != 0 {
			t.Errorf("%s = %d on an idle session, want 0", name, v)
		}
	}
	if v := gauge("serve_cache_resident_bytes"); v <= 0 {
		t.Errorf("serve_cache_resident_bytes = %d with warm dimension tables", v)
	}
	if v := gauge("serve_result_cache_entries"); v != 2 {
		t.Errorf("serve_result_cache_entries = %d after 2 distinct queries, want 2", v)
	}
	if v := gauge("serve_result_cache_resident_bytes"); v <= 0 {
		t.Errorf("serve_result_cache_resident_bytes = %d with 2 cached results", v)
	}
	if v := gauge("serve_result_cache_hits"); v != 0 {
		t.Errorf("serve_result_cache_hits = %d with no repeated query, want 0", v)
	}
}

// TestDebugSLOEndpoint checks /slo reports per-class percentiles that match
// the registry's histograms exactly (the endpoint reads them from the same
// snapshot the /metrics exposition uses).
func TestDebugSLOEndpoint(t *testing.T) {
	sess, srv := debugEnv(t, "Q1.1", "Q1.2", "Q2.1")

	body, ctype := get(t, srv.URL+"/slo")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ctype)
	}
	var out struct {
		Classes []struct {
			Class     string `json:"class"`
			Queries   int64  `json:"queries"`
			Completed int64  `json:"completed"`
			Errors    int64  `json:"errors"`
			Shed      int64  `json:"shed"`
			P50Ns     int64  `json:"p50_ns"`
			P99Ns     int64  `json:"p99_ns"`
		} `json:"classes"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad /slo JSON: %v\n%s", err, body)
	}
	byClass := map[string]int{}
	for i, c := range out.Classes {
		byClass[c.Class] = i
	}
	f1, ok := byClass["flight-1"]
	if !ok {
		t.Fatalf("no flight-1 class in /slo: %s", body)
	}
	if got := out.Classes[f1].Queries; got != 2 {
		t.Errorf("flight-1 queries = %d, want 2", got)
	}
	if _, ok := byClass["flight-2"]; !ok {
		t.Errorf("no flight-2 class in /slo: %s", body)
	}

	snap := sess.Metrics().Snapshot()
	for _, c := range out.Classes {
		h, ok := snap.Histograms["serve.slo."+c.Class+".latency_ns"]
		if !ok {
			t.Errorf("class %s has no registry histogram", c.Class)
			continue
		}
		if c.Completed != h.Count || c.P50Ns != int64(h.P50) || c.P99Ns != int64(h.P99) {
			t.Errorf("class %s: /slo (n=%d p50=%d p99=%d) != registry (n=%d p50=%d p99=%d)",
				c.Class, c.Completed, c.P50Ns, c.P99Ns, h.Count, int64(h.P50), int64(h.P99))
		}
		if c.Errors != 0 || c.Shed != 0 {
			t.Errorf("class %s: unexpected errors=%d shed=%d", c.Class, c.Errors, c.Shed)
		}
	}
}

// TestDebugProfilezEndpoint checks the flight recorder surface: the text
// view lists one EXPLAIN ANALYZE report per query, the JSON view parses,
// and ?trace= fetches a single profile.
func TestDebugProfilezEndpoint(t *testing.T) {
	sess, srv := debugEnv(t, "Q1.1", "Q3.4")

	body, _ := get(t, srv.URL+"/profilez")
	if !strings.Contains(body, "flight recorder: 2 profiles retained of 2 recorded") {
		t.Errorf("text header wrong:\n%.200s", body)
	}
	if !strings.Contains(body, "EXPLAIN ANALYZE Q1.1") || !strings.Contains(body, "EXPLAIN ANALYZE Q3.4") {
		t.Error("text view missing a query report")
	}

	jsonBody, _ := get(t, srv.URL+"/profilez?format=json")
	var profiles []struct {
		Trace  string `json:"trace"`
		Query  string `json:"query"`
		WallNs int64  `json:"wall_ns"`
		Phases []struct {
			Name   string `json:"name"`
			WallNs int64  `json:"wall_ns"`
		} `json:"phases"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &profiles); err != nil {
		t.Fatalf("bad /profilez JSON: %v", err)
	}
	if len(profiles) != 2 {
		t.Fatalf("got %d profiles, want 2", len(profiles))
	}
	for _, p := range profiles {
		var sum int64
		for _, ph := range p.Phases {
			sum += ph.WallNs
		}
		if sum != p.WallNs {
			t.Errorf("%s: phase walls sum to %d, wall is %d", p.Query, sum, p.WallNs)
		}
	}

	one, ctype := get(t, srv.URL+"/profilez?trace="+profiles[0].Trace)
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("single-trace Content-Type = %q", ctype)
	}
	var single struct {
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal([]byte(one), &single); err != nil {
		t.Fatal(err)
	}
	if single.Trace != profiles[0].Trace {
		t.Errorf("?trace=%s returned trace %s", profiles[0].Trace, single.Trace)
	}

	// The recorder the endpoints read is the same one the session fills.
	if got := sess.Profiles().Total(); got != 2 {
		t.Errorf("recorder Total = %d, want 2", got)
	}
}
