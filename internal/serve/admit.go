package serve

import (
	"context"
	"errors"
	"sync"

	"clydesdale/internal/obs"
)

// ErrQueueFull is returned by Session.Query when the admission queue is at
// QueueDepth; callers shed load instead of piling up. Check with errors.Is.
var ErrQueueFull = errors.New("serve: admission queue full")

// admitter is the weighted fair-share admission controller. Queries queue
// per tenant (strict FIFO within a tenant) and tenants are served by
// deficit scheduling: each scheduling round credits every waiting tenant
// quantum×weight bytes of deficit, and a tenant's head query runs once its
// cost fits the tenant's accumulated deficit — so over time each tenant's
// admitted bytes are proportional to its weight, and one tenant's burst
// cannot monopolize the budget. Globally a query runs only while the
// concurrency cap holds and its estimated memory cost fits the remaining
// budget.
//
// Two starvation guards are layered on top. The escape valve (kept from the
// FIFO admitter): a query whose cost alone exceeds the whole budget is
// admitted once nothing else is in flight, rather than waiting forever.
// Priority aging: a query that has watched agingPasses other admissions go
// by has its deficit requirement waived — it then competes on global
// feasibility alone, so a big reporting query in a low-weight tenant is
// delayed proportionally, never indefinitely.
//
// A session serving a single tenant reduces exactly to the old global FIFO:
// one queue, arrival order, head-of-line blocking and all.
type admitter struct {
	budget      int64
	maxConc     int
	depth       int   // global bound on queued waiters
	quantum     int64 // deficit credited per round per unit weight
	agingPasses int   // passes before a waiter's deficit gate is waived; <= 0 disables
	weights     map[string]int64

	reg *obs.Registry // live gauges (queue depth, in-flight, reserved); may be nil

	mu       sync.Mutex
	reserved int64
	inFlight int
	queued   int
	tenants  map[string]*tenantQueue
	active   []*tenantQueue // tenants with waiters, in first-wait order
	rr       int            // round-robin cursor into active

	admitted     int64
	rejected     int64
	peakInFlight int
}

type tenantQueue struct {
	name    string
	weight  int64
	deficit int64
	fifo    []*waiter
}

type waiter struct {
	tq      *tenantQueue
	cost    int64
	passes  int // admissions of other queries observed while queued
	granted chan struct{}
}

// admitConfig bundles the admitter's tuning knobs.
type admitConfig struct {
	budget      int64
	maxConc     int
	depth       int
	weights     map[string]int64 // tenant → weight; missing or < 1 means 1
	agingPasses int              // 0 → default 64; < 0 → disabled
	quantum     int64            // 0 → budget/64 (min 1)
}

func newAdmitter(cfg admitConfig, reg *obs.Registry) *admitter {
	if cfg.quantum <= 0 {
		cfg.quantum = cfg.budget / 64
		if cfg.quantum < 1 {
			cfg.quantum = 1
		}
	}
	switch {
	case cfg.agingPasses == 0:
		cfg.agingPasses = 64
	case cfg.agingPasses < 0:
		cfg.agingPasses = 0
	}
	return &admitter{
		budget:      cfg.budget,
		maxConc:     cfg.maxConc,
		depth:       cfg.depth,
		quantum:     cfg.quantum,
		agingPasses: cfg.agingPasses,
		weights:     cfg.weights,
		reg:         reg,
		tenants:     make(map[string]*tenantQueue),
	}
}

func (a *admitter) tenantLocked(name string) *tenantQueue {
	tq, ok := a.tenants[name]
	if !ok {
		w := int64(1)
		if cfgW, ok := a.weights[name]; ok && cfgW >= 1 {
			w = cfgW
		}
		tq = &tenantQueue{name: name, weight: w}
		a.tenants[name] = tq
	}
	return tq
}

// chargeOf is the deficit a grant consumes: the query's byte cost, floored
// at one quantum. Without the floor, cheap queries (e.g. fully cache-warm
// ones costing ~0 bytes) would let one tenant's burst bank a single round's
// credit into many consecutive grants, recreating the head-of-line blocking
// fair sharing exists to break. With it, leftover deficit after a grant is
// always below quantum×weight for one round, so a weight-1 tenant yields
// after every grant while others wait, and weight-w tenants get up to w
// cheap grants per round — byte proportionality for big queries, weighted
// round-robin for small ones.
func (a *admitter) chargeOf(cost int64) int64 {
	if cost < a.quantum {
		return a.quantum
	}
	return cost
}

func (a *admitter) canRunLocked(cost int64) bool {
	if a.inFlight >= a.maxConc {
		return false
	}
	return a.reserved+cost <= a.budget || a.inFlight == 0
}

func (a *admitter) grantLocked(cost int64) {
	a.reserved += cost
	a.inFlight++
	if a.inFlight > a.peakInFlight {
		a.peakInFlight = a.inFlight
	}
	a.admitted++
}

// updateGaugesLocked publishes the live admission levels; /metrics scrapes
// read them without touching the admitter.
func (a *admitter) updateGaugesLocked() {
	if a.reg == nil {
		return
	}
	a.reg.Gauge("serve.admission.queue_depth").Set(int64(a.queued))
	a.reg.Gauge("serve.admission.in_flight").Set(int64(a.inFlight))
	a.reg.Gauge("serve.admission.reserved_bytes").Set(a.reserved)
}

// admit blocks until the query may run, the queue overflows, or ctx ends.
// On success the returned release must be called exactly once when the
// query finishes (however it finishes).
func (a *admitter) admit(ctx context.Context, tenant string, cost int64) (func(), error) {
	a.mu.Lock()
	if a.queued == 0 && a.canRunLocked(cost) {
		a.grantLocked(cost)
		a.updateGaugesLocked()
		a.mu.Unlock()
		return func() { a.release(cost) }, nil
	}
	if a.queued >= a.depth {
		a.rejected++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	tq := a.tenantLocked(tenant)
	w := &waiter{tq: tq, cost: cost, granted: make(chan struct{})}
	if len(tq.fifo) == 0 {
		a.active = append(a.active, tq)
	}
	tq.fifo = append(tq.fifo, w)
	a.queued++
	// The new waiter may be schedulable right away (e.g. its tenant holds
	// deficit while the others' heads do not fit the budget).
	a.scheduleLocked()
	a.updateGaugesLocked()
	a.mu.Unlock()

	select {
	case <-w.granted:
		return func() { a.release(cost) }, nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.granted:
			// Granted concurrently with cancellation: give the slot back.
			a.releaseLocked(cost)
			a.mu.Unlock()
			return nil, ctx.Err()
		default:
		}
		a.removeWaiterLocked(w)
		// The cancelled waiter may have been the head of the line; whoever
		// is behind it could fit the free capacity right now, so run the
		// scheduler instead of waiting for the next release.
		a.scheduleLocked()
		a.updateGaugesLocked()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// removeWaiterLocked drops w from its tenant queue (cancellation path).
func (a *admitter) removeWaiterLocked(w *waiter) {
	tq := w.tq
	for i, q := range tq.fifo {
		if q == w {
			tq.fifo = append(tq.fifo[:i], tq.fifo[i+1:]...)
			a.queued--
			break
		}
	}
	if len(tq.fifo) == 0 {
		a.deactivateLocked(tq)
	}
}

// deactivateLocked removes an emptied tenant from the active list and
// resets its deficit: deficit is owed service while waiting, not a bankable
// credit across idle periods (classic DRR).
func (a *admitter) deactivateLocked(tq *tenantQueue) {
	for i, t := range a.active {
		if t == tq {
			a.active = append(a.active[:i], a.active[i+1:]...)
			if a.rr > i {
				a.rr--
			}
			break
		}
	}
	if len(a.active) > 0 {
		a.rr %= len(a.active)
	} else {
		a.rr = 0
	}
	tq.deficit = 0
}

func (a *admitter) release(cost int64) {
	a.mu.Lock()
	a.releaseLocked(cost)
	a.updateGaugesLocked()
	a.mu.Unlock()
}

func (a *admitter) releaseLocked(cost int64) {
	a.reserved -= cost
	a.inFlight--
	a.scheduleLocked()
}

// scheduleLocked admits every waiter that can run, in weighted fair-share
// order. Each iteration considers only queue heads (within a tenant order
// is strict FIFO) that are globally feasible, and picks the one needing the
// fewest deficit rounds — aged waiters need zero by definition and oldest
// wins among them. Rounds are advanced in one step rather than spun:
// crediting every active tenant quantum×weight per round makes admitted
// bytes track weights without a busy loop.
func (a *admitter) scheduleLocked() {
	for {
		var (
			best       *tenantQueue
			bestIdx    int
			bestRounds int64
			bestAged   bool
			bestPasses int
			found      bool
		)
		n := len(a.active)
		for i := 0; i < n; i++ {
			idx := (a.rr + i) % n
			tq := a.active[idx]
			head := tq.fifo[0]
			if !a.canRunLocked(head.cost) {
				continue
			}
			aged := a.agingPasses > 0 && head.passes >= a.agingPasses
			charge := a.chargeOf(head.cost)
			var rounds int64
			if !aged && tq.deficit < charge {
				per := a.quantum * tq.weight
				need := charge - tq.deficit
				rounds = (need + per - 1) / per
			}
			better := false
			switch {
			case !found:
				better = true
			case aged != bestAged:
				better = aged
			case aged:
				better = head.passes > bestPasses
			default:
				better = rounds < bestRounds
			}
			if better {
				best, bestIdx, bestRounds, bestAged, bestPasses, found = tq, idx, rounds, aged, head.passes, true
			}
		}
		if !found {
			return
		}
		if bestRounds > 0 {
			for _, tq := range a.active {
				tq.deficit += bestRounds * a.quantum * tq.weight
			}
		}
		head := best.fifo[0]
		best.fifo = best.fifo[1:]
		a.queued--
		best.deficit -= a.chargeOf(head.cost)
		if best.deficit < 0 {
			best.deficit = 0
		}
		if len(best.fifo) == 0 {
			a.deactivateLocked(best)
		} else {
			a.rr = (bestIdx + 1) % len(a.active)
		}
		a.grantLocked(head.cost)
		close(head.granted)
		// Everyone still waiting watched an admission go by: age them.
		for _, tq := range a.active {
			for _, w := range tq.fifo {
				w.passes++
			}
		}
	}
}

// syncGauges republishes the current admission levels (scrape-time refresh,
// so gauges exist even before the first admit).
func (a *admitter) syncGauges() {
	a.mu.Lock()
	a.updateGaugesLocked()
	a.mu.Unlock()
}

// snapshot returns (running, queued, admitted, rejected, peak).
func (a *admitter) snapshot() (int, int, int64, int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight, a.queued, a.admitted, a.rejected, a.peakInFlight
}
