package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Session.Query when the admission queue is at
// QueueDepth; callers shed load instead of piling up. Check with errors.Is.
var ErrQueueFull = errors.New("serve: admission queue full")

// admitter is the FIFO admission controller: a query runs only while the
// concurrency cap holds and its estimated memory cost fits the remaining
// budget; otherwise it queues. One escape valve prevents starvation: a
// query whose cost alone exceeds the budget is admitted once nothing else
// is in flight (it will then either fit in practice or fail over to the
// staged plan, rather than wait forever).
type admitter struct {
	budget  int64
	maxConc int
	depth   int

	mu       sync.Mutex
	reserved int64
	inFlight int
	waiters  []*waiter

	admitted     int64
	rejected     int64
	peakInFlight int
}

type waiter struct {
	cost    int64
	granted chan struct{}
}

func newAdmitter(budget int64, maxConc, depth int) *admitter {
	return &admitter{budget: budget, maxConc: maxConc, depth: depth}
}

func (a *admitter) canRunLocked(cost int64) bool {
	if a.inFlight >= a.maxConc {
		return false
	}
	return a.reserved+cost <= a.budget || a.inFlight == 0
}

func (a *admitter) grantLocked(cost int64) {
	a.reserved += cost
	a.inFlight++
	if a.inFlight > a.peakInFlight {
		a.peakInFlight = a.inFlight
	}
	a.admitted++
}

// admit blocks until the query may run, the queue overflows, or ctx ends.
// On success the returned release must be called exactly once when the
// query finishes (however it finishes).
func (a *admitter) admit(ctx context.Context, cost int64) (func(), error) {
	a.mu.Lock()
	if len(a.waiters) == 0 && a.canRunLocked(cost) {
		a.grantLocked(cost)
		a.mu.Unlock()
		return func() { a.release(cost) }, nil
	}
	if len(a.waiters) >= a.depth {
		a.rejected++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{cost: cost, granted: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.granted:
		return func() { a.release(cost) }, nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.granted:
			// Granted concurrently with cancellation: give the slot back.
			a.releaseLocked(cost)
			a.mu.Unlock()
			return nil, ctx.Err()
		default:
		}
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (a *admitter) release(cost int64) {
	a.mu.Lock()
	a.releaseLocked(cost)
	a.mu.Unlock()
}

func (a *admitter) releaseLocked(cost int64) {
	a.reserved -= cost
	a.inFlight--
	// Wake queued queries strictly in FIFO order: stop at the first that
	// still does not fit, preserving arrival fairness over utilization.
	for len(a.waiters) > 0 && a.canRunLocked(a.waiters[0].cost) {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.grantLocked(w.cost)
		close(w.granted)
	}
}

// snapshot returns (running, queued, admitted, rejected, peak).
func (a *admitter) snapshot() (int, int, int64, int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight, len(a.waiters), a.admitted, a.rejected, a.peakInFlight
}
