package serve_test

import (
	"context"
	"sync"
	"testing"

	"clydesdale/internal/core"
	"clydesdale/internal/mr"
	"clydesdale/internal/refexec"
	"clydesdale/internal/results"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

// TestServeSurvivesNodeDeathBetweenQueries is the end-to-end recovery test
// for the serving layer: a node dies between two queries of one session.
// The dead node's cached tables must be evicted (their reservations died
// with the node), and the next queries must still return exact results on
// the surviving nodes.
func TestServeSurvivesNodeDeathBetweenQueries(t *testing.T) {
	e := newEnv(t, 4, 0.002, mr.Options{})
	// Pruning off so every node builds Q2.1's tables — making the post-kill
	// eviction observable.
	s := e.session(serve.Options{Engine: core.Options{NoScanPruning: true}})
	defer s.Close()

	check := func(name string) {
		t.Helper()
		q, err := ssb.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rs, _, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := refexec.Run(e.gen, q)
		if err != nil {
			t.Fatal(err)
		}
		if ok, why := results.Equivalent(rs, want, 1e-9); !ok {
			t.Fatalf("%s: %s", name, why)
		}
	}

	check("Q2.1")
	evBefore := s.Stats().Evictions

	// The node dies; the session's death watcher drops its cached tables
	// and the namenode re-replicates its blocks.
	e.cluster.Node("node-2").Kill()
	_, _, _ = e.fs.OnNodeFailure("node-2")

	if ev := s.Stats().Evictions; ev <= evBefore {
		t.Errorf("evictions %d -> %d; dead node's cached tables were not dropped", evBefore, ev)
	}

	// Warm path (same query: survivors' tables are cache hits) and a cold
	// path both still serve exact results.
	check("Q2.1")
	check("Q3.1")

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	e.checkNoLeak(t)
}

// TestServeAdmissionNoLivelockWhenCacheFull: with a cache budget far below
// one query's tables and an admission budget below one query's cost, every
// entry is mid-build or over-budget whenever a query runs — eviction can
// never reach the budget. Admission must fall back to its escape valve
// (admit when nothing is in flight) and serialize the workload rather than
// livelock it.
func TestServeAdmissionNoLivelockWhenCacheFull(t *testing.T) {
	e := newEnv(t, 3, 0.002, mr.Options{})
	s := e.session(serve.Options{
		MaxConcurrent:     4,
		CacheBudget:       1,  // no table ever fits
		AdmissionBudget:   1,  // no query is ever affordable
		ResultCacheBudget: -1, // repeats must reach admission, not the result cache
	})
	defer s.Close()

	names := []string{"Q1.1", "Q2.1", "Q3.1", "Q1.2", "Q2.1", "Q3.1"}
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	sets := make([]*results.ResultSet, len(names))
	for i, name := range names {
		q, err := ssb.QueryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, q *core.Query) {
			defer wg.Done()
			sets[i], _, errs[i] = s.Query(context.Background(), q)
		}(i, q)
	}
	wg.Wait() // livelock shows up here as a test timeout

	for i, name := range names {
		if errs[i] != nil {
			t.Fatalf("%s: %v", name, errs[i])
		}
		q, _ := ssb.QueryByName(name)
		want, err := refexec.Run(e.gen, q)
		if err != nil {
			t.Fatal(err)
		}
		if ok, why := results.Equivalent(sets[i], want, 1e-9); !ok {
			t.Errorf("%s: %s", name, why)
		}
	}

	stats := s.Stats()
	if stats.Admitted != int64(len(names)) {
		t.Errorf("admitted %d, want %d", stats.Admitted, len(names))
	}
	if stats.PeakConcurrent != 1 {
		t.Errorf("peak concurrency %d; over-budget queries must serialize through the escape valve", stats.PeakConcurrent)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	e.checkNoLeak(t)
}
