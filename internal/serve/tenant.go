package serve

import "context"

// DefaultTenant is the identity of queries whose context carries no tenant.
// A session serving only default-tenant traffic behaves exactly like the
// pre-tenant global FIFO: one queue, strict arrival order.
const DefaultTenant = "default"

type tenantCtxKey struct{}

// WithTenant returns a context carrying the tenant identity for Query calls
// below it. Admission queues, fair-share weights and the admission byte
// quota all key on this identity; an empty id means DefaultTenant.
func WithTenant(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, id)
}

// TenantFrom extracts the tenant identity from a context, defaulting to
// DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if ctx != nil {
		if id, ok := ctx.Value(tenantCtxKey{}).(string); ok && id != "" {
			return id
		}
	}
	return DefaultTenant
}
