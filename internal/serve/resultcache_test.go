package serve_test

import (
	"context"
	"sync"
	"testing"

	"clydesdale/internal/colstore"
	"clydesdale/internal/core"
	"clydesdale/internal/expr"
	"clydesdale/internal/mr"
	"clydesdale/internal/obs"
	"clydesdale/internal/refexec"
	"clydesdale/internal/results"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

// TestServeResultCacheSingleflight: concurrent identical queries coalesce
// into ONE MapReduce job — the first becomes the builder, the rest block on
// the in-flight entry — and every caller gets the reference answer.
func TestServeResultCacheSingleflight(t *testing.T) {
	reg := obs.NewRegistry()
	e := newEnv(t, 2, 0.002, mr.Options{Metrics: reg})
	s := e.session(serve.Options{MaxConcurrent: 8})
	defer s.Close()

	q, err := ssb.QueryByName("Q2.1")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wg sync.WaitGroup
	sets := make([]*results.ResultSet, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sets[i], _, errs[i] = s.Query(context.Background(), q)
		}(i)
	}
	wg.Wait()

	want, err := refexec.Run(e.gen, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if ok, why := results.Equivalent(sets[i], want, 1e-9); !ok {
			t.Errorf("caller %d: %s", i, why)
		}
	}
	if jobs := reg.Counter("mr.jobs_submitted").Value(); jobs != 1 {
		t.Errorf("%d concurrent identical queries submitted %d MR jobs, want 1", callers, jobs)
	}
	st := s.Stats()
	if st.ResultMisses != 1 || st.ResultHits != callers-1 {
		t.Errorf("misses=%d hits=%d, want 1 miss and %d piggybacked hits",
			st.ResultMisses, st.ResultHits, callers-1)
	}
}

// narrowedQ41 clones Q4.1 with an extra date-dimension predicate reading
// only a group-by column (d_year) — the shape the subsumption rule serves by
// post-filtering the cached broad result's group rows.
func narrowedQ41(t *testing.T) *core.Query {
	t.Helper()
	broad, err := ssb.QueryByName("Q4.1")
	if err != nil {
		t.Fatal(err)
	}
	q := *broad
	q.Dims = append([]core.DimSpec(nil), broad.Dims...)
	d := &q.Dims[0] // date dimension: no predicate in broad Q4.1
	if d.Table != "date" || d.Pred != nil {
		t.Fatalf("Q4.1 dim 0 = %s pred %v; the narrowing below needs updating", d.Table, d.Pred)
	}
	d.Pred = expr.Eq(expr.Col("d_year"), expr.ConstInt(1997))
	return &q
}

// TestServeResultCacheSubsumption: after the broad Q4.1 is cached, the
// strictly-narrower d_year=1997 variant is answered from the cached rows —
// no MapReduce job — and still matches the reference executor run on the
// narrow query itself.
func TestServeResultCacheSubsumption(t *testing.T) {
	reg := obs.NewRegistry()
	e := newEnv(t, 2, 0.002, mr.Options{Metrics: reg})
	s := e.session(serve.Options{})
	defer s.Close()

	broad, err := ssb.QueryByName("Q4.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(context.Background(), broad); err != nil {
		t.Fatal(err)
	}
	coldJobs := reg.Counter("mr.jobs_submitted").Value()
	if coldJobs == 0 {
		t.Fatal("cold Q4.1 submitted no MR jobs")
	}

	narrow := narrowedQ41(t)
	rs, _, err := s.Query(context.Background(), narrow)
	if err != nil {
		t.Fatal(err)
	}
	if jobs := reg.Counter("mr.jobs_submitted").Value(); jobs != coldJobs {
		t.Errorf("narrow query submitted %d MR jobs; subsumption must serve from cache", jobs-coldJobs)
	}
	if st := s.Stats(); st.ResultSubsumedHits != 1 {
		t.Errorf("subsumption hits = %d, want 1", st.ResultSubsumedHits)
	}
	want, err := refexec.Run(e.gen, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := results.Equivalent(rs, want, 1e-9); !ok {
		t.Errorf("subsumed answer vs reference: %s", why)
	}
}

// TestServeResultCacheRollInInvalidates: rolling new fact partitions in and
// calling InvalidateTable makes the next identical query recompute against
// the grown table instead of serving the stale cached sum. Duplicating the
// whole fact table makes the staleness arithmetic exact: the fresh Q1.1
// revenue must be exactly twice the cached one.
func TestServeResultCacheRollInInvalidates(t *testing.T) {
	reg := obs.NewRegistry()
	e := newEnv(t, 2, 0.002, mr.Options{Metrics: reg})
	s := e.session(serve.Options{})
	defer s.Close()

	q, err := ssb.QueryByName("Q1.1")
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != 1 {
		t.Fatalf("Q1.1 returned %d rows, want 1", len(before.Rows))
	}
	jobsBefore := reg.Counter("mr.jobs_submitted").Value()

	// Roll-in: append a full copy of the fact data (no rewrite of existing
	// partitions), then drop cached results that read lineorder.
	w, err := colstore.AppendPartitions(e.fs, e.lay.FactCIF, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.gen.Each(ssb.TableLineorder, w.Append); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := s.InvalidateTable(ssb.TableLineorder); n == 0 {
		t.Fatal("InvalidateTable(lineorder) dropped no cached results")
	}

	after, _, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if jobs := reg.Counter("mr.jobs_submitted").Value(); jobs == jobsBefore {
		t.Error("post-roll-in query served from cache; invalidation must force recompute")
	}
	got := after.Rows[0].Get(q.AggName).Float64()
	want := 2 * before.Rows[0].Get(q.AggName).Float64()
	if got != want {
		t.Errorf("post-roll-in revenue = %v, want exactly doubled %v", got, want)
	}
	if st := s.Stats(); st.ResultInvalidations == 0 {
		t.Error("invalidation counter did not move")
	}
}

// TestServeResultCacheCloseReleases: cached result bytes are reserved like
// table bytes and must be zero after Close.
func TestServeResultCacheCloseReleases(t *testing.T) {
	e := newEnv(t, 2, 0.002, mr.Options{})
	s := e.session(serve.Options{})

	q, err := ssb.QueryByName("Q3.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ResultBytes == 0 {
		t.Fatal("no resident result bytes after a cacheable query")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ResultBytes != 0 {
		t.Errorf("%d result bytes still resident after Close", st.ResultBytes)
	}
	e.checkNoLeak(t)
}
