package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func mustAdmit(t *testing.T, a *admitter, cost int64) func() {
	t.Helper()
	release, err := a.admit(context.Background(), cost)
	if err != nil {
		t.Fatalf("admit(%d): %v", cost, err)
	}
	return release
}

// TestAdmitterFIFO checks arrival fairness: a cheap query queued behind an
// expensive head-of-line waiter must not jump the queue, even though its
// cost alone would fit the remaining budget.
func TestAdmitterFIFO(t *testing.T) {
	a := newAdmitter(100, 4, 8)
	release := mustAdmit(t, a, 50)

	done := make(chan int, 2)
	for i, cost := range []int64{60, 10} {
		i, cost := i, cost
		go func() {
			rel, err := a.admit(context.Background(), cost)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			rel()
			done <- i
		}()
		// Ensure deterministic arrival order in the queue.
		for {
			if _, queued, _, _, _ := a.snapshot(); queued == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The 10-byte waiter fits (50+10 <= 100) but sits behind the 60-byte one
	// which does not; FIFO means neither runs.
	time.Sleep(20 * time.Millisecond)
	if running, queued, _, _, _ := a.snapshot(); running != 1 || queued != 2 {
		t.Fatalf("running=%d queued=%d: cheap waiter jumped the FIFO queue", running, queued)
	}

	release()
	<-done
	<-done
	if running, queued, admitted, _, _ := a.snapshot(); running != 0 || queued != 0 || admitted != 3 {
		t.Fatalf("running=%d queued=%d admitted=%d after drain", running, queued, admitted)
	}
}

func TestAdmitterQueueFull(t *testing.T) {
	a := newAdmitter(100, 1, 1)
	release := mustAdmit(t, a, 100)

	queued := make(chan struct{})
	go func() {
		rel, err := a.admit(context.Background(), 1)
		if err != nil {
			t.Errorf("queued waiter: %v", err)
			return
		}
		rel()
		close(queued)
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := a.admit(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow admit: got %v, want ErrQueueFull", err)
	}
	if _, _, _, rejected, _ := a.snapshot(); rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}

	release()
	<-queued
}

func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := newAdmitter(100, 1, 8)
	release := mustAdmit(t, a, 100)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx, 1)
		errc <- err
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: got %v, want context.Canceled", err)
	}
	// The canceled waiter must have left the queue so release has nobody
	// stale to grant.
	if _, queued, _, _, _ := a.snapshot(); queued != 0 {
		t.Fatalf("queue length %d after cancel, want 0", queued)
	}
	release()
	if running, _, _, _, _ := a.snapshot(); running != 0 {
		t.Fatalf("running %d after release, want 0", running)
	}
}

// TestAdmitterEscapeValve: a query costing more than the whole budget still
// runs once the system is idle, instead of queueing forever.
func TestAdmitterEscapeValve(t *testing.T) {
	a := newAdmitter(100, 2, 8)
	release := mustAdmit(t, a, 500)
	if running, _, _, _, _ := a.snapshot(); running != 1 {
		t.Fatalf("over-budget query not admitted on idle admitter")
	}
	// While it runs, a second over-budget query must wait.
	done := make(chan struct{})
	go func() {
		rel, err := a.admit(context.Background(), 500)
		if err != nil {
			t.Errorf("second over-budget query: %v", err)
			return
		}
		rel()
		close(done)
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, _, _, peak := a.snapshot(); peak != 1 {
		t.Fatalf("peak %d, want over-budget queries serialized", peak)
	}
	release()
	<-done
}

func TestAdmitterConcurrencyCap(t *testing.T) {
	a := newAdmitter(1000, 2, 8)
	r1 := mustAdmit(t, a, 1)
	r2 := mustAdmit(t, a, 1)

	granted := make(chan struct{})
	go func() {
		rel, err := a.admit(context.Background(), 1)
		if err != nil {
			t.Errorf("third query: %v", err)
			return
		}
		close(granted)
		rel()
	}()
	select {
	case <-granted:
		t.Fatal("third query ran above MaxConcurrent")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	<-granted
	r2()
}
