package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// testAdmitter builds an admitter with the FIFO-era knobs; a single tenant
// under the fair-share scheduler reduces exactly to the old global FIFO, so
// these tests still pin that contract.
func testAdmitter(budget int64, maxConc, depth int) *admitter {
	return newAdmitter(admitConfig{budget: budget, maxConc: maxConc, depth: depth}, nil)
}

func mustAdmit(t *testing.T, a *admitter, cost int64) func() {
	t.Helper()
	release, err := a.admit(context.Background(), DefaultTenant, cost)
	if err != nil {
		t.Fatalf("admit(%d): %v", cost, err)
	}
	return release
}

// TestAdmitterFIFO checks arrival fairness: a cheap query queued behind an
// expensive head-of-line waiter must not jump the queue, even though its
// cost alone would fit the remaining budget.
func TestAdmitterFIFO(t *testing.T) {
	a := testAdmitter(100, 4, 8)
	release := mustAdmit(t, a, 50)

	done := make(chan int, 2)
	for i, cost := range []int64{60, 10} {
		i, cost := i, cost
		go func() {
			rel, err := a.admit(context.Background(), DefaultTenant, cost)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			rel()
			done <- i
		}()
		// Ensure deterministic arrival order in the queue.
		for {
			if _, queued, _, _, _ := a.snapshot(); queued == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The 10-byte waiter fits (50+10 <= 100) but sits behind the 60-byte one
	// which does not; FIFO means neither runs.
	time.Sleep(20 * time.Millisecond)
	if running, queued, _, _, _ := a.snapshot(); running != 1 || queued != 2 {
		t.Fatalf("running=%d queued=%d: cheap waiter jumped the FIFO queue", running, queued)
	}

	release()
	<-done
	<-done
	if running, queued, admitted, _, _ := a.snapshot(); running != 0 || queued != 0 || admitted != 3 {
		t.Fatalf("running=%d queued=%d admitted=%d after drain", running, queued, admitted)
	}
}

func TestAdmitterQueueFull(t *testing.T) {
	a := testAdmitter(100, 1, 1)
	release := mustAdmit(t, a, 100)

	queued := make(chan struct{})
	go func() {
		rel, err := a.admit(context.Background(), DefaultTenant, 1)
		if err != nil {
			t.Errorf("queued waiter: %v", err)
			return
		}
		rel()
		close(queued)
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := a.admit(context.Background(), DefaultTenant, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow admit: got %v, want ErrQueueFull", err)
	}
	if _, _, _, rejected, _ := a.snapshot(); rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}

	release()
	<-queued
}

func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := testAdmitter(100, 1, 8)
	release := mustAdmit(t, a, 100)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx, DefaultTenant, 1)
		errc <- err
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: got %v, want context.Canceled", err)
	}
	// The canceled waiter must have left the queue so release has nobody
	// stale to grant.
	if _, queued, _, _, _ := a.snapshot(); queued != 0 {
		t.Fatalf("queue length %d after cancel, want 0", queued)
	}
	release()
	if running, _, _, _, _ := a.snapshot(); running != 0 {
		t.Fatalf("running %d after release, want 0", running)
	}
}

// TestAdmitterEscapeValve: a query costing more than the whole budget still
// runs once the system is idle, instead of queueing forever.
func TestAdmitterEscapeValve(t *testing.T) {
	a := testAdmitter(100, 2, 8)
	release := mustAdmit(t, a, 500)
	if running, _, _, _, _ := a.snapshot(); running != 1 {
		t.Fatalf("over-budget query not admitted on idle admitter")
	}
	// While it runs, a second over-budget query must wait.
	done := make(chan struct{})
	go func() {
		rel, err := a.admit(context.Background(), DefaultTenant, 500)
		if err != nil {
			t.Errorf("second over-budget query: %v", err)
			return
		}
		rel()
		close(done)
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, _, _, peak := a.snapshot(); peak != 1 {
		t.Fatalf("peak %d, want over-budget queries serialized", peak)
	}
	release()
	<-done
}

func TestAdmitterConcurrencyCap(t *testing.T) {
	a := testAdmitter(1000, 2, 8)
	r1 := mustAdmit(t, a, 1)
	r2 := mustAdmit(t, a, 1)

	granted := make(chan struct{})
	go func() {
		rel, err := a.admit(context.Background(), DefaultTenant, 1)
		if err != nil {
			t.Errorf("third query: %v", err)
			return
		}
		close(granted)
		rel()
	}()
	select {
	case <-granted:
		t.Fatal("third query ran above MaxConcurrent")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	<-granted
	r2()
}

// TestAdmitterCancelHeadWakesQueue is the head-of-line wake regression: a
// cheap waiter queued behind an expensive cancelled head must be admitted
// the moment the head leaves, not at the next release.
func TestAdmitterCancelHeadWakesQueue(t *testing.T) {
	a := testAdmitter(100, 4, 8)
	release := mustAdmit(t, a, 50)
	defer release()

	headCtx, cancelHead := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := a.admit(headCtx, DefaultTenant, 60) // 50+60 > 100: blocks
		headErr <- err
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	granted := make(chan func(), 1)
	go func() {
		rel, err := a.admit(context.Background(), DefaultTenant, 10) // fits, but behind the head
		if err != nil {
			t.Errorf("cheap waiter: %v", err)
			return
		}
		granted <- rel
	}()
	for {
		if _, n, _, _, _ := a.snapshot(); n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	cancelHead()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled head: got %v, want context.Canceled", err)
	}
	select {
	case rel := <-granted:
		rel()
	case <-time.After(2 * time.Second):
		t.Fatal("waiter behind cancelled head not woken until next release")
	}
}

// TestAdmitterFairShareInterleaves: under equal weights, a tenant arriving
// behind another tenant's backlog is served interleaved with it, not after
// the whole backlog drains (the global-FIFO failure mode).
func TestAdmitterFairShareInterleaves(t *testing.T) {
	a := testAdmitter(100, 1, 16)
	release := mustAdmit(t, a, 10)

	order := make(chan string, 8)
	enqueue := func(tenant string, n int) {
		_, before, _, _, _ := a.snapshot()
		go func() {
			rel, err := a.admit(context.Background(), tenant, 10)
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			order <- tenant
			rel()
		}()
		for {
			if _, queued, _, _, _ := a.snapshot(); queued == before+n {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_ = before
	}
	for i := 0; i < 4; i++ {
		enqueue("bulk", 1)
	}
	enqueue("dash", 1)

	release()
	first, second := <-order, <-order
	if first != "bulk" || second != "dash" {
		t.Fatalf("first grants = %s, %s; want the dash tenant interleaved after one bulk grant", first, second)
	}
	for i := 0; i < 3; i++ {
		if got := <-order; got != "bulk" {
			t.Fatalf("grant %d = %s, want bulk backlog", i+3, got)
		}
	}
}

// TestAdmitterAgingUnstarves: a heavy query in a low-weight tenant facing a
// stream of cheap high-weight queries is admitted once it has watched
// agingPasses admissions go by, instead of losing every deficit race.
func TestAdmitterAgingUnstarves(t *testing.T) {
	a := newAdmitter(admitConfig{
		budget:      1000,
		maxConc:     1,
		depth:       16,
		weights:     map[string]int64{"light": 10, "heavy": 1},
		agingPasses: 2,
	}, nil)
	release := mustAdmit(t, a, 10)

	order := make(chan string, 8)
	enqueue := func(tenant string, cost int64) {
		_, before, _, _, _ := a.snapshot()
		go func() {
			rel, err := a.admit(context.Background(), tenant, cost)
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			order <- tenant
			rel()
		}()
		for {
			if _, queued, _, _, _ := a.snapshot(); queued == before+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("heavy", 500)
	for i := 0; i < 5; i++ {
		enqueue("light", 10)
	}

	release()
	got := make([]string, 6)
	for i := range got {
		got[i] = <-order
	}
	pos := -1
	for i, tenant := range got {
		if tenant == "heavy" {
			pos = i
			break
		}
	}
	// Two light admissions age the heavy head past agingPasses=2; the third
	// grant must be the heavy query.
	if pos != 2 {
		t.Fatalf("heavy query admitted at position %d of %v, want 2 (after agingPasses light grants)", pos, got)
	}
}
