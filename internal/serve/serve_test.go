package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"clydesdale/internal/cluster"
	"clydesdale/internal/core"
	"clydesdale/internal/hdfs"
	"clydesdale/internal/mr"
	"clydesdale/internal/obs"
	"clydesdale/internal/refexec"
	"clydesdale/internal/results"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

type env struct {
	cluster *cluster.Cluster
	fs      *hdfs.FileSystem
	mr      *mr.Engine
	gen     *ssb.Generator
	lay     *ssb.Layout
}

func newEnv(t *testing.T, workers int, sf float64, mropts mr.Options) *env {
	t.Helper()
	c := cluster.New(cluster.Testing(workers))
	fs := hdfs.New(c, hdfs.Options{BlockSize: 1 << 16, Seed: 23})
	gen := ssb.NewGenerator(sf, 42)
	lay, err := ssb.Load(fs, gen, "/ssb", ssb.LoadOptions{SkipRC: true, PartitionRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return &env{cluster: c, fs: fs, mr: mr.NewEngine(c, fs, mropts), gen: gen, lay: lay}
}

func (e *env) session(opts serve.Options) *serve.Session {
	return serve.New(e.mr, e.lay.Catalog(), opts)
}

func (e *env) checkNoLeak(t *testing.T) {
	t.Helper()
	for _, n := range e.cluster.Nodes() {
		if used := n.MemoryUsed(); used != 0 {
			t.Errorf("node %s holds %d bytes after session close", n.ID(), used)
		}
	}
}

// distinctTables counts the distinct (dimDir, fingerprint) keys across the
// queries — the number of builds the cache should perform per node.
func distinctTables(t *testing.T, cat *core.Catalog, queries []*core.Query) int {
	t.Helper()
	seen := map[string]bool{}
	for _, q := range queries {
		for i := range q.Dims {
			dir, err := cat.DimDir(q.Dims[i].Table)
			if err != nil {
				t.Fatal(err)
			}
			seen[dir+"\x00"+q.Dims[i].Fingerprint()] = true
		}
	}
	return len(seen)
}

// TestServeConcurrentQueries is the headline serving test: every SSB query
// at once through one session must match the reference executor, each
// dimension table must be built at most once per node across ALL queries
// (the cross-query cache generalizing the per-job singleflight), and
// closing the session must return every reserved byte.
func TestServeConcurrentQueries(t *testing.T) {
	const workers = 3
	e := newEnv(t, workers, 0.002, mr.Options{})
	// Zone-map pruning off: with pruning a node whose every fact partition
	// is pruned for some query never builds that query's dimension tables,
	// and the exact builds == tables x nodes accounting below would not hold.
	s := e.session(serve.Options{MaxConcurrent: 8, Engine: core.Options{NoScanPruning: true}})

	queries := ssb.Queries()
	if len(queries) < 8 {
		t.Fatalf("want >= 8 concurrent queries, SSB has %d", len(queries))
	}
	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	sets := make([]*results.ResultSet, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *core.Query) {
			defer wg.Done()
			sets[i], _, errs[i] = s.Query(context.Background(), q)
		}(i, q)
	}
	wg.Wait()

	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("%s: %v", q.Name, errs[i])
		}
		want, err := refexec.Run(e.gen, q)
		if err != nil {
			t.Fatalf("%s ref: %v", q.Name, err)
		}
		if ok, why := results.Equivalent(sets[i], want, 1e-9); !ok {
			t.Errorf("%s under serving concurrency: %s", q.Name, why)
		}
	}

	stats := s.Stats()
	wantBuilds := int64(workers * distinctTables(t, e.lay.Catalog(), queries))
	if stats.Builds != wantBuilds {
		t.Errorf("cache built %d tables, want exactly %d (distinct tables x nodes)", stats.Builds, wantBuilds)
	}
	if stats.Evictions != 0 {
		t.Errorf("unexpected evictions (%d) under default budget", stats.Evictions)
	}
	if stats.Hits == 0 {
		t.Errorf("no cache hits across %d overlapping queries", len(queries))
	}
	if stats.Admitted != int64(len(queries)) {
		t.Errorf("admitted %d, want %d", stats.Admitted, len(queries))
	}
	if stats.ResidentBytes == 0 {
		t.Errorf("no resident table bytes after %d queries", len(queries))
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if rb := s.Stats().ResidentBytes; rb != 0 {
		t.Errorf("%d bytes still resident after close", rb)
	}
	e.checkNoLeak(t)

	if _, _, err := s.Query(context.Background(), queries[0]); !errors.Is(err, serve.ErrClosed) {
		t.Errorf("Query after Close: got %v, want ErrClosed", err)
	}
}

// TestServeAdmissionSerializes proves the admission controller serializes
// two queries whose combined cost exceeds the budget: with warm tables the
// per-query cost is exactly TaskMemory, so two 600-byte queries against a
// 1000-byte budget must never overlap.
func TestServeAdmissionSerializes(t *testing.T) {
	e := newEnv(t, 2, 0.002, mr.Options{})
	s := e.session(serve.Options{
		MaxConcurrent:     4,
		AdmissionBudget:   1000,
		TaskMemory:        600,
		ResultCacheBudget: -1, // repeated runs must exercise admission
	})
	defer s.Close()

	q, err := ssb.QueryByName("Q2.1")
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: tables are cold, so this first query costs tables+600 and is
	// admitted alone through the starvation escape valve.
	if _, _, err := s.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if peak := s.Stats().PeakConcurrent; peak != 1 {
		t.Fatalf("warm-up peak concurrency %d, want 1", peak)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Query(context.Background(), q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	stats := s.Stats()
	if stats.PeakConcurrent != 1 {
		t.Errorf("peak concurrency %d: over-budget queries ran together", stats.PeakConcurrent)
	}
	if stats.Admitted != 3 {
		t.Errorf("admitted %d, want 3", stats.Admitted)
	}
}

// cancelOnSpan cancels a context the first time a span with the given name
// is emitted — a deterministic way to cancel a query provably mid-flight.
type cancelOnSpan struct {
	name   string
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnSpan) Emit(sp obs.Span) {
	if sp.Name == c.name {
		c.once.Do(c.cancel)
	}
}

// TestServeCancellationReleasesMemory cancels a query mid-flight — right
// after its first hash-table build span — and verifies the error is the
// typed cancellation and that closing the session leaves MemoryUsed() == 0
// on every node.
func TestServeCancellationReleasesMemory(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelOnSpan{name: obs.PhaseHashBuild, cancel: cancel}
	e := newEnv(t, 2, 0.002, mr.Options{Tracer: obs.NewTracer(sink)})
	s := e.session(serve.Options{})

	q, err := ssb.QueryByName("Q3.1")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Query(ctx, q)
	if err == nil {
		t.Fatal("canceled query returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}
	if !errors.Is(err, mr.ErrCanceled) {
		t.Errorf("error %v does not match mr.ErrCanceled", err)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	e.checkNoLeak(t)

	// The session still serves other callers' queries after one cancel: a
	// fresh session on the same engine runs the query to completion.
	s2 := e.session(serve.Options{})
	defer s2.Close()
	rs, _, err := s2.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refexec.Run(e.gen, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := results.Equivalent(rs, want, 1e-9); !ok {
		t.Errorf("after cancel: %s", why)
	}
}

// TestServeCacheHitSkipsHashBuild runs the same query twice; the second run
// must probe cached tables without emitting a single hash-build span.
func TestServeCacheHitSkipsHashBuild(t *testing.T) {
	sink := obs.NewMemorySink()
	e := newEnv(t, 2, 0.002, mr.Options{Tracer: obs.NewTracer(sink)})
	// Result cache off: the warm run must re-execute and probe the TABLE
	// cache, not answer from cached rows.
	s := e.session(serve.Options{ResultCacheBudget: -1})
	defer s.Close()

	q, err := ssb.QueryByName("Q2.3")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if n := countSpans(sink.Spans(), obs.PhaseHashBuild); n == 0 {
		t.Fatalf("cold run emitted no %s spans", obs.PhaseHashBuild)
	}

	sink.Reset()
	rs, _, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if n := countSpans(sink.Spans(), obs.PhaseHashBuild); n != 0 {
		t.Errorf("warm run emitted %d %s spans, want 0", n, obs.PhaseHashBuild)
	}
	if hits := s.Stats().Hits; hits == 0 {
		t.Errorf("warm run recorded no cache hits")
	}
	want, err := refexec.Run(e.gen, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := results.Equivalent(rs, want, 1e-9); !ok {
		t.Errorf("warm run: %s", why)
	}
}

// TestServeQueueWaitObserved checks the admission wait surfaces through the
// obs layer: every admitted query contributes one admission-wait span and
// one histogram sample.
func TestServeQueueWaitObserved(t *testing.T) {
	sink := obs.NewMemorySink()
	reg := obs.NewRegistry()
	e := newEnv(t, 2, 0.002, mr.Options{Tracer: obs.NewTracer(sink), Metrics: reg})
	s := e.session(serve.Options{})
	defer s.Close()

	q, err := ssb.QueryByName("Q1.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if n := countSpans(sink.Spans(), obs.PhaseAdmissionWait); n != 1 {
		t.Errorf("got %d %s spans, want 1", n, obs.PhaseAdmissionWait)
	}
	if c := reg.Histogram("serve.admission_wait_ns").Count(); c != 1 {
		t.Errorf("admission-wait histogram has %d samples, want 1", c)
	}
}

func countSpans(spans []obs.Span, name string) int {
	n := 0
	for _, sp := range spans {
		if sp.Name == name {
			n++
		}
	}
	return n
}
