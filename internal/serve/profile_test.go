package serve_test

import (
	"context"
	"sync"
	"testing"

	"clydesdale/internal/mr"
	"clydesdale/internal/obs"
	"clydesdale/internal/serve"
	"clydesdale/internal/ssb"
)

// TestConcurrentProfilesDisjoint is the tentpole correlation test: eight
// mixed SSB queries race through one session and every one must come out
// the other side as its own coherent span tree — eight distinct traces,
// each rooted at a query span carrying the right query name, zero orphans,
// zero drops, task spans nested under job spans, and per-phase walls that
// partition the query's wall clock exactly. Run under -race by `make
// race-concurrency`.
func TestConcurrentProfilesDisjoint(t *testing.T) {
	const n = 8
	e := newEnv(t, 3, 0.002, mr.Options{})
	sess := e.session(serve.Options{MaxConcurrent: n})
	defer sess.Close()

	names := []string{"Q1.1", "Q2.1", "Q3.1", "Q4.1", "Q1.2", "Q2.2", "Q3.4", "Q4.2"}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, err := ssb.QueryByName(names[i])
			if err != nil {
				errs[i] = err
				return
			}
			_, _, errs[i] = sess.Query(context.Background(), q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
	}

	rec := sess.Profiles()
	if rec == nil {
		t.Fatal("session has no flight recorder")
	}
	profiles := rec.Recent()
	if len(profiles) != n {
		t.Fatalf("flight recorder holds %d profiles, want %d", len(profiles), n)
	}

	traces := make(map[string]bool, n)
	gotNames := make(map[string]bool, n)
	for _, p := range profiles {
		if traces[p.Trace] {
			t.Fatalf("trace %s recorded twice — queries cross-attached", p.Trace)
		}
		traces[p.Trace] = true
		if p.Root == nil || p.Root.Span.Name != obs.PhaseQuery {
			t.Fatalf("trace %s: root is not a query span", p.Trace)
		}
		gotNames[p.Query] = true
		if p.Orphans != 0 {
			t.Errorf("%s (%s): %d orphan spans", p.Query, p.Trace, p.Orphans)
		}
		if p.Dropped != 0 {
			t.Errorf("%s (%s): %d dropped spans", p.Query, p.Trace, p.Dropped)
		}
		if got, want := p.PhaseWallTotal(), p.Wall; got != want {
			t.Errorf("%s (%s): phase walls sum to %v, want %v", p.Query, p.Trace, got, want)
		}
		checkNesting(t, p.Trace, p.Root, "")
	}
	for _, name := range names {
		if !gotNames[name] {
			t.Errorf("no profile recorded for %s", name)
		}
	}
}

// checkNesting walks a profile tree asserting the structural layering:
// every span belongs to the profile's trace, task spans sit under job
// spans, and job spans sit under the query root (directly or via another
// structural span — never under a peer task).
func checkNesting(t *testing.T, trace string, n *obs.ProfileNode, parentName string) {
	t.Helper()
	if n.Span.Trace != trace {
		t.Errorf("span %s (%s) carries trace %q inside profile %q", n.Span.Name, n.Span.SpanID, n.Span.Trace, trace)
	}
	switch n.Span.Name {
	case obs.PhaseJob:
		if parentName != obs.PhaseQuery {
			t.Errorf("job span %s nests under %q, want query", n.Span.Job, parentName)
		}
	case obs.PhaseTask:
		if parentName != obs.PhaseJob {
			t.Errorf("task span %s nests under %q, want job", n.Span.TaskID, parentName)
		}
	}
	for _, c := range n.Children {
		checkNesting(t, trace, c, n.Span.Name)
	}
}
