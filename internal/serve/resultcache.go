package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"clydesdale/internal/expr"
	"clydesdale/internal/obs"
	"clydesdale/internal/plan"
	"clydesdale/internal/records"
	"clydesdale/internal/results"
)

// errResultNotCached marks a placeholder whose build did not publish (the
// query failed, was shed, or the entry was invalidated mid-build). Waiters
// piggybacked on the placeholder retry the cache from scratch.
var errResultNotCached = errors.New("serve: result not cached")

// resultCache keeps whole query results resident on the driver, keyed by
// the normalized plan fingerprint (plan.KeyOf): two queries that compute
// the same answer share one entry no matter how their predicates were
// spelled. Entries singleflight — concurrent misses on one fingerprint run
// the query once and everyone else waits for the published rows — and a
// lookup that misses its own fingerprint still scans for a subsuming entry
// (same skeleton, subset conjuncts, extras over group-by columns only)
// whose rows answer the narrower query after a post-filter.
//
// Like the table cache, residency is byte-accounted (records.Record
// MemSize) against a budget with LRU eviction; unlike it, results live on
// the driver, so the reservation ledger is the cache's own bytes gauge
// rather than node memory. Entries drop on Close and on roll-in
// (Session.InvalidateTable) — a cached SUM is stale the moment any table it
// read grows.
type resultCache struct {
	budget int64
	reg    *obs.Registry // live gauges; may be nil

	mu      sync.Mutex
	entries map[string]*resultEntry // fingerprint → entry
	bytes   int64
	clock   uint64 // LRU clock; ticks on every touch

	hits          atomic.Int64
	subsumedHits  atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// resultEntry is one cached result. done closes when the build publishes or
// aborts (singleflight); rs is immutable once set — readers copy the row
// slice, never the entry.
type resultEntry struct {
	key     plan.CacheKey
	fp      string
	done    chan struct{}
	rs      *results.ResultSet
	err     error
	bytes   int64
	lastUse uint64
}

func newResultCache(budget int64, reg *obs.Registry) *resultCache {
	return &resultCache{budget: budget, reg: reg, entries: make(map[string]*resultEntry)}
}

func (rc *resultCache) updateGaugesLocked() {
	if rc.reg == nil {
		return
	}
	rc.reg.Gauge("serve.result_cache.resident_bytes").Set(rc.bytes)
	rc.reg.Gauge("serve.result_cache.entries").Set(int64(len(rc.entries)))
	rc.reg.Gauge("serve.result_cache.hits").Set(rc.hits.Load())
	rc.reg.Gauge("serve.result_cache.subsumption_hits").Set(rc.subsumedHits.Load())
}

func (rc *resultCache) count(c *atomic.Int64, name string) {
	c.Add(1)
	if rc.reg != nil {
		rc.reg.Counter("serve.result_cache." + name).Inc()
	}
}

// lookup resolves key against the cache. Outcomes:
//   - exact hit: (rows, "hit", nil) — rows are a fresh ResultSet whose row
//     slice the caller owns (it may re-sort freely);
//   - subsumption hit: (rows, "subsumed", nil) — cached rows of a broader
//     query, already post-filtered by the extra conjuncts;
//   - miss: (nil, "miss", publish) — the caller owns the placeholder and
//     MUST call publish exactly once: with the computed result to cache it,
//     or with nil to abort (query failed or was shed).
//
// Waiting on a concurrent build blocks until it resolves or ctx ends.
func (rc *resultCache) lookup(ctx context.Context, key *plan.CacheKey, fp string) (*results.ResultSet, string, func(*results.ResultSet), error) {
	trySubsume := true
	for {
		rc.mu.Lock()
		if e, ok := rc.entries[fp]; ok {
			rc.clock++
			e.lastUse = rc.clock
			rc.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, "", nil, ctx.Err()
			}
			if e.err != nil {
				continue // build aborted; retry (likely becoming the builder)
			}
			rc.count(&rc.hits, "hits")
			rc.updateGauges()
			return copyResult(e.rs), "hit", nil, nil
		}
		// No exact entry: a finished broader one may subsume this query.
		if trySubsume {
			if e, extra := rc.subsumerLocked(key); e != nil {
				rc.clock++
				e.lastUse = rc.clock
				rs := e.rs // immutable once published; filter outside the lock
				rc.mu.Unlock()
				filtered, err := filterResult(rs, extra)
				if err == nil {
					rc.count(&rc.subsumedHits, "subsumption_hits")
					rc.updateGauges()
					return filtered, "subsumed", nil, nil
				}
				// A predicate the result schema cannot evaluate: degrade to a
				// plain miss (retaking the lock, since an exact entry may have
				// appeared meanwhile) rather than fail the query over a cache
				// path.
				trySubsume = false
				continue
			}
		}
		e := &resultEntry{key: *key, fp: fp, done: make(chan struct{})}
		rc.clock++
		e.lastUse = rc.clock
		rc.entries[fp] = e
		rc.mu.Unlock()
		rc.count(&rc.misses, "misses")
		return nil, "miss", func(rs *results.ResultSet) { rc.publish(e, rs) }, nil
	}
}

// subsumerLocked finds a finished entry whose key subsumes the lookup key,
// returning it with the extra post-filter conjuncts.
func (rc *resultCache) subsumerLocked(key *plan.CacheKey) (*resultEntry, []expr.Pred) {
	for _, e := range rc.entries {
		select {
		case <-e.done:
		default:
			continue // still building; its key may yet fail to publish
		}
		if e.err != nil {
			continue
		}
		if extra, ok := e.key.Subsumes(key); ok {
			return e, extra
		}
	}
	return nil, nil
}

// publish resolves a miss placeholder: caches rs, or aborts on nil. Either
// way every waiter on the entry unblocks.
func (rc *resultCache) publish(e *resultEntry, rs *results.ResultSet) {
	if rs == nil {
		rc.mu.Lock()
		if rc.entries[e.fp] == e {
			delete(rc.entries, e.fp)
		}
		e.err = errResultNotCached
		rc.updateGaugesLocked()
		rc.mu.Unlock()
		close(e.done)
		return
	}
	// Snapshot the rows: the caller re-sorts its copy per query, and cached
	// canonical rows must not move under later readers.
	canonical := copyResult(rs)
	bytes := resultBytes(canonical)
	rc.mu.Lock()
	switch {
	case rc.entries[e.fp] != e:
		// Invalidated (Close or roll-in) while the query ran: the rows were
		// computed from pre-roll-in data and must not be cached.
		e.err = errResultNotCached
	case bytes > rc.budget:
		delete(rc.entries, e.fp)
		e.err = errResultNotCached
	default:
		rc.evictLocked(bytes)
		e.rs, e.bytes = canonical, bytes
		rc.bytes += bytes
	}
	rc.updateGaugesLocked()
	rc.mu.Unlock()
	close(e.done)
}

// evictLocked drops finished entries, least recently used first, until the
// incoming bytes fit the budget.
func (rc *resultCache) evictLocked(incoming int64) {
	for rc.bytes+incoming > rc.budget {
		var victimFP string
		var victim *resultEntry
		for fp, e := range rc.entries {
			select {
			case <-e.done:
			default:
				continue // in-flight build holds no bytes yet
			}
			if e.err != nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimFP, victim = fp, e
			}
		}
		if victim == nil {
			return
		}
		delete(rc.entries, victimFP)
		rc.bytes -= victim.bytes
		rc.count(&rc.evictions, "evictions")
	}
}

// invalidateTable drops every entry whose plan read the table (fact or
// dimension); call on roll-in, before new data becomes visible to queries.
// In-flight builds are unmapped too — publish then refuses to cache their
// stale rows. Returns the number of entries dropped.
func (rc *resultCache) invalidateTable(table string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n := 0
	for fp, e := range rc.entries {
		reads := false
		for _, t := range e.key.Tables {
			if t == table {
				reads = true
				break
			}
		}
		if !reads {
			continue
		}
		delete(rc.entries, fp)
		rc.bytes -= e.bytes // zero for in-flight builds
		rc.count(&rc.invalidations, "invalidations")
		n++
	}
	rc.updateGaugesLocked()
	return n
}

// evictAll empties the cache (Close); in-flight builds abort via publish.
func (rc *resultCache) evictAll() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for fp, e := range rc.entries {
		delete(rc.entries, fp)
		rc.bytes -= e.bytes
		rc.count(&rc.invalidations, "invalidations")
	}
	rc.updateGaugesLocked()
}

// residentBytes returns the cache's current byte accounting.
func (rc *resultCache) residentBytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

func (rc *resultCache) updateGauges() {
	rc.mu.Lock()
	rc.updateGaugesLocked()
	rc.mu.Unlock()
}

// copyResult returns a ResultSet sharing rows but owning its slice: sorting
// the copy never reorders the original.
func copyResult(rs *results.ResultSet) *results.ResultSet {
	return &results.ResultSet{Schema: rs.Schema, Rows: append([]records.Record(nil), rs.Rows...)}
}

// filterResult applies extra conjuncts (each referencing only columns of the
// result schema) to a cached result, producing the narrower query's rows.
func filterResult(rs *results.ResultSet, extra []expr.Pred) (*results.ResultSet, error) {
	preds := make([]expr.RowPred, len(extra))
	for i, p := range extra {
		rp, err := expr.CompilePred(p, rs.Schema)
		if err != nil {
			return nil, err
		}
		preds[i] = rp
	}
	out := &results.ResultSet{Schema: rs.Schema}
	for _, row := range rs.Rows {
		keep := true
		for _, rp := range preds {
			if !rp(row) {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// resultBytes estimates a result's driver-side footprint.
func resultBytes(rs *results.ResultSet) int64 {
	var n int64 = 64 // ResultSet + schema headers
	for _, r := range rs.Rows {
		n += r.MemSize()
	}
	return n
}
