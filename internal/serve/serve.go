// Package serve is the query-serving layer over core.Engine: it makes
// concurrent star-join workloads first-class. The paper's §8 leaves the
// multi-workload setting as future work; this layer supplies the three
// pieces that setting needs. (1) A cross-query dimension hash-table cache:
// per-node tables keyed by (dimDir, DimSpec fingerprint) survive job
// completion in a residency-accounted LRU, so query N+1 probes the tables
// query N built. (2) Admission control: a query's estimated table memory is
// checked against a per-node budget before submission, and over-budget
// queries queue FIFO under a concurrency cap instead of racing node
// reservations into deadlock-by-OOM. (3) Cancellation: the caller's context
// flows through core.Engine.Run and mr.Engine.Submit down to task attempts,
// so abandoning a query provably releases every byte it reserved.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clydesdale/internal/cluster"
	"clydesdale/internal/colstore"
	"clydesdale/internal/core"
	"clydesdale/internal/mr"
	"clydesdale/internal/obs"
	"clydesdale/internal/plan"
	"clydesdale/internal/records"
	"clydesdale/internal/results"
)

// ErrClosed is returned by Query after Close; check with errors.Is.
var ErrClosed = errors.New("serve: session closed")

// Options configures a Session.
type Options struct {
	// Engine is the underlying core engine configuration. Tables is
	// overwritten with the session's cross-query cache.
	Engine core.Options
	// MaxConcurrent caps queries executing simultaneously; <= 0 uses 4.
	MaxConcurrent int
	// QueueDepth bounds queries waiting for admission before Query returns
	// ErrQueueFull; < 0 means no queue (immediate rejection), 0 uses 32.
	QueueDepth int
	// CacheBudget is the per-node byte bound on resident cached tables;
	// <= 0 uses half the node memory.
	CacheBudget int64
	// AdmissionBudget is the per-node byte budget admission reserves
	// against; <= 0 uses CacheBudget.
	AdmissionBudget int64
	// TaskMemory is an additional per-query admission charge for working
	// state beyond the dimension tables; 0 charges tables only.
	TaskMemory int64
	// ProfileDepth is the flight recorder's capacity: how many recent query
	// profiles the session retains (the debug server's /profilez history).
	// 0 uses 16; negative disables per-query profiling entirely (no trace
	// collection, no assembly cost).
	ProfileDepth int
	// TenantWeights maps tenant identity (see WithTenant) to its fair-share
	// weight; missing tenants weigh 1. A tenant with weight 3 is admitted
	// roughly 3× the bytes of a weight-1 tenant under contention.
	TenantWeights map[string]int64
	// AgingPasses bounds queue starvation: a queued query that has watched
	// this many other admissions go by has its fair-share deficit gate
	// waived. 0 uses 64; negative disables aging.
	AgingPasses int
	// ResultCacheBudget bounds driver-resident cached result bytes for the
	// fingerprint result cache; 0 uses 64 MiB, negative disables the cache.
	ResultCacheBudget int64
	// IngestPartitionRows sizes the CIF partitions fact roll-in batches are
	// staged into; <= 0 uses colstore.DefaultPartitionRows. Small values
	// favor ingest latency and lean on the compactor to restore scan-sized
	// partitions.
	IngestPartitionRows int64
}

// Stats is a point-in-time snapshot of the session's serving counters.
type Stats struct {
	// Table cache.
	Hits, Misses, Builds, Evictions int64
	ResidentBytes                   int64
	// Admission control.
	Admitted, Rejected int64
	Running, Queued    int
	PeakConcurrent     int
	// Result cache.
	ResultHits, ResultSubsumedHits, ResultMisses int64
	ResultEvictions, ResultInvalidations         int64
	ResultBytes                                  int64
	// Ingestion.
	RollIns, RollInRows, RollInFailures int64
	Compactions, CompactedRows          int64
	PartitionsPublished                 int64 // roll-in + compaction output
	PartitionsRetired                   int64 // compaction input + retention
	TableInvalidations                  int64 // cached dim tables evicted/doomed by roll-in
}

// Session serves queries over one cluster, sharing dimension hash tables
// across them. Safe for concurrent use.
type Session struct {
	mrEng  *mr.Engine
	cat    *core.Catalog
	eng    *core.Engine
	cache  *tableCache
	adm    *admitter
	rcache *resultCache // nil when Options.ResultCacheBudget < 0
	opts   Options

	// collector buckets the session's spans by trace; recorder keeps the
	// recently assembled profiles. Both nil when profiling is disabled.
	collector *obs.TraceCollector
	recorder  *obs.FlightRecorder

	mu          sync.Mutex
	closed      bool
	wg          sync.WaitGroup
	unwatch     func() // cancels the cluster death watcher
	stopCompact func() // stops the background compactor; nil unless started

	// ingestMu serializes the write path — roll-in, compaction, retention
	// are single-writer; queries never take it.
	ingestMu sync.Mutex

	rollIns, rollInRows, rollInFailures atomic.Int64
	compactions, compactedRows          atomic.Int64
	partsPublished, partsRetired        atomic.Int64
	tableInvalidations                  atomic.Int64

	estMu     sync.Mutex
	estimates map[string]int64 // cache key → estimated build bytes
}

// New creates a serving session over a MapReduce engine and catalog.
func New(mrEngine *mr.Engine, cat *core.Catalog, opts Options) *Session {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 4
	}
	switch {
	case opts.QueueDepth == 0:
		opts.QueueDepth = 32
	case opts.QueueDepth < 0:
		opts.QueueDepth = 0
	}
	if opts.CacheBudget <= 0 {
		opts.CacheBudget = mrEngine.Cluster().Config().MemoryPerNode / 2
	}
	if opts.AdmissionBudget <= 0 {
		opts.AdmissionBudget = opts.CacheBudget
	}
	// The serving layer's accounting (SLO histograms, live gauges, /metrics)
	// needs a registry; give the engine one if its owner didn't.
	if mrEngine.Metrics() == nil {
		mrEngine.SetMetrics(obs.NewRegistry())
	}
	reg := mrEngine.Metrics()
	cache := newTableCache(opts.CacheBudget)
	engOpts := opts.Engine
	engOpts.Tables = cache
	var rcache *resultCache
	if opts.ResultCacheBudget >= 0 {
		budget := opts.ResultCacheBudget
		if budget == 0 {
			budget = 64 << 20
		}
		rcache = newResultCache(budget, reg)
	}
	s := &Session{
		mrEng:  mrEngine,
		cat:    cat,
		eng:    core.New(mrEngine, cat, engOpts),
		cache:  cache,
		rcache: rcache,
		adm: newAdmitter(admitConfig{
			budget:      opts.AdmissionBudget,
			maxConc:     opts.MaxConcurrent,
			depth:       opts.QueueDepth,
			weights:     opts.TenantWeights,
			agingPasses: opts.AgingPasses,
		}, reg),
		opts:      opts,
		estimates: make(map[string]int64),
	}
	// A killed node takes its memory reservations with it; drop its cached
	// tables immediately so warm probes of later queries don't touch tables
	// whose reservations were freed.
	s.unwatch = mrEngine.Cluster().OnDeath(func(n *cluster.Node) {
		cache.dropNode(n.ID())
	})
	if opts.ProfileDepth >= 0 {
		// Profiling needs the span stream: attach a per-trace collector,
		// creating the tracer when the owner didn't supply one.
		if mrEngine.Tracer() == nil {
			mrEngine.SetTracer(obs.NewTracer())
		}
		s.collector = obs.NewTraceCollector(0, 0)
		mrEngine.Tracer().AddSink(s.collector)
		s.recorder = obs.NewFlightRecorder(opts.ProfileDepth)
	}
	return s
}

// Metrics returns the registry the session's accounting lands in.
func (s *Session) Metrics() *obs.Registry { return s.mrEng.Metrics() }

// Profiles returns the flight recorder of recent query profiles, or nil
// when profiling is disabled (Options.ProfileDepth < 0).
func (s *Session) Profiles() *obs.FlightRecorder { return s.recorder }

// QueryClass buckets a query name into an SLO class: the SSB flights map to
// "flight-1" … "flight-4" ("Q3.4" → "flight-3"), anything else is "adhoc".
// Per-class latency histograms and shed/error counters land in the registry
// under "serve.slo.<class>.*".
func QueryClass(name string) string {
	if len(name) >= 2 && name[0] == 'Q' && name[1] >= '1' && name[1] <= '9' {
		return "flight-" + name[1:2]
	}
	return "adhoc"
}

// slo records one query outcome in the per-class SLO accounting.
func (s *Session) slo(class, outcome string, latency time.Duration) {
	m := s.Metrics()
	if m == nil {
		return
	}
	prefix := "serve.slo." + class + "."
	m.Counter(prefix + "queries").Inc()
	switch outcome {
	case "ok":
		m.Histogram(prefix + "latency_ns").ObserveDuration(latency)
	case "shed":
		m.Counter(prefix + "shed").Inc()
	default:
		m.Counter(prefix + "errors").Inc()
	}
}

// Engine exposes the session's core engine (e.g. for catalog access).
func (s *Session) Engine() *core.Engine { return s.eng }

// Query runs one star query through the result cache, admission control and
// the shared table cache. It blocks while queued; ctx cancels both the wait
// and, once running, the query itself. ctx also carries the tenant identity
// (WithTenant) the admission controller fair-shares on. Each call is one
// trace: the session emits the root "query" span, every job/task/read span
// the query causes parents into it via the context, and the assembled
// profile lands in the flight recorder.
func (s *Session) Query(ctx context.Context, q *core.Query) (*results.ResultSet, *core.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	class := QueryClass(q.Name)
	tenant := TenantFrom(ctx)
	qstart := time.Now()
	var sc obs.SpanContext
	if s.mrEng.Tracer().Enabled() {
		sc = obs.NewTrace()
		ctx = obs.ContextWith(ctx, sc)
	}

	// Result cache first: a hit (exact or by subsumption) answers without
	// touching admission or MapReduce at all. A miss leaves us owning the
	// singleflight placeholder — concurrent equal queries block on it, so
	// the publish below (or the abort on any failure path) must always run.
	var cachePublish func(*results.ResultSet)
	if s.rcache != nil {
		if key, fp, ok := s.cacheKey(q); ok {
			crs, kind, publish, lerr := s.rcache.lookup(ctx, key, fp)
			if lerr != nil {
				s.slo(class, "error", 0)
				s.finishTrace(sc, q, qstart, lerr, nil)
				return nil, nil, fmt.Errorf("serve: %s: %w", q.Name, lerr)
			}
			if kind != "miss" {
				if err := crs.Sort(resultOrders(q)); err != nil {
					s.slo(class, "error", 0)
					s.finishTrace(sc, q, qstart, err, nil)
					return nil, nil, fmt.Errorf("serve: %s: %w", q.Name, err)
				}
				rep := &core.Report{
					Query: q.Name,
					// No job ran; synthesize empty counters so report
					// consumers need no cache-hit special case.
					Job:   &mr.JobResult{Counters: mr.NewCounters()},
					Total: time.Since(qstart),
				}
				s.slo(class, "ok", time.Since(qstart))
				s.finishTrace(sc, q, qstart, nil, rep)
				return crs, rep, nil
			}
			cachePublish = publish
		}
	}
	defer func() {
		if cachePublish != nil {
			cachePublish(nil) // not cached: unblock singleflight waiters
		}
	}()

	cost, err := s.admissionCost(q)
	if err != nil {
		s.slo(class, "error", 0)
		s.finishTrace(sc, q, qstart, err, nil)
		return nil, nil, err
	}

	waitStart := time.Now()
	release, err := s.adm.admit(ctx, tenant, cost)
	if err != nil {
		outcome := "error"
		if errors.Is(err, ErrQueueFull) {
			outcome = "shed"
		}
		s.slo(class, outcome, 0)
		s.finishTrace(sc, q, qstart, err, nil)
		return nil, nil, fmt.Errorf("serve: %s: %w", q.Name, err)
	}
	defer release()
	s.observeQueueWait(sc, q, waitStart)

	rs, rep, err := s.eng.Run(ctx, q)
	if err == nil {
		if cachePublish != nil {
			cachePublish(rs)
			cachePublish = nil
		}
		s.slo(class, "ok", time.Since(qstart))
	} else {
		s.slo(class, "error", 0)
	}
	s.finishTrace(sc, q, qstart, err, rep)
	return rs, rep, err
}

// cacheKey canonicalizes the query into its result-cache identity; ok is
// false for queries the plan layer cannot normalize (those just bypass the
// cache rather than fail).
func (s *Session) cacheKey(q *core.Query) (*plan.CacheKey, string, bool) {
	lg, err := core.LogicalOf(q, s.cat)
	if err != nil {
		return nil, "", false
	}
	sh, err := plan.Decompose(lg)
	if err != nil {
		return nil, "", false
	}
	k := plan.KeyOf(sh)
	return &k, k.Fingerprint(), true
}

// resultOrders is the query's effective ORDER BY in the result package's
// vocabulary (cached rows are re-sorted per query; ordering is not part of
// the cache identity).
func resultOrders(q *core.Query) []results.Order {
	ords := q.Orders()
	out := make([]results.Order, len(ords))
	for i, o := range ords {
		out[i] = results.Order{Col: o.Col, Desc: o.Desc}
	}
	return out
}

// InvalidateTable drops every cached result whose plan read the named table
// (fact or dimension); call it after rolling new data into the table so
// stale sums never serve. Returns the number of results dropped.
//
// RollIn calls this as part of its fan-out; use it directly only when data
// changed outside the session (an external writer appended partitions).
func (s *Session) InvalidateTable(table string) int {
	if s.rcache == nil {
		return 0
	}
	return s.rcache.invalidateTable(table)
}

// RollIn appends a batch of rows to the named table — the fact table or a
// dimension — and is the single notification path that keeps every piece
// of derived state coherent with the new data:
//
//	fact:      rows stage into fresh CIF partitions and publish in one
//	           atomic swap (a query snapshots the partition list at plan
//	           time, so it computes entirely over the pre- or post-batch
//	           table, never a mix), then cached results for the table drop;
//	dimension: rows append to the master row table (atomic rename publish),
//	           then node-local dimension copies drop, the engine's FK-range
//	           hints and semi-join blooms for the table evict, the serve
//	           table cache bumps the dimension's generation, admission
//	           estimates reset, and cached results drop.
//
// The result cache is invalidated after the data publishes: invalidating
// first would let a query that computed pre-batch rows cache them as
// post-batch; this order instead unmaps any in-flight build, whose publish
// then refuses the stale rows. A nil error means the whole batch is
// visible; on error nothing became visible. Roll-ins serialize with each
// other and with compaction/retention, not with queries.
func (s *Session) RollIn(table string, rows func(emit func(records.Record) error) error) (int64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if table == s.cat.FactName {
		return s.rollInFact(table, rows)
	}
	return s.rollInDim(table, rows)
}

func (s *Session) rollInFact(table string, rows func(emit func(records.Record) error) error) (int64, error) {
	n, parts, err := s.eng.Snapshots().RollIn(s.cat.FactDir, s.opts.IngestPartitionRows, rows)
	if err != nil {
		s.rollInFailures.Add(1)
		s.countIngest("roll_in_failures")
		return 0, fmt.Errorf("serve: roll-in %s: %w", table, err)
	}
	s.partsPublished.Add(int64(len(parts)))
	s.finishRollIn(table, n)
	return n, nil
}

func (s *Session) rollInDim(table string, rows func(emit func(records.Record) error) error) (int64, error) {
	dir, err := s.cat.DimDir(table)
	if err != nil {
		return 0, err
	}
	n, err := colstore.AppendRowTable(s.mrEng.FS(), dir, rows)
	if err != nil {
		s.rollInFailures.Add(1)
		s.countIngest("roll_in_failures")
		return 0, fmt.Errorf("serve: roll-in %s: %w", table, err)
	}
	// Invalidation fan-out, innermost state first: node-local dimension
	// copies (the hash-table build source), the engine's derived scan
	// pushdowns, the cross-query table cache, the admission estimates. All
	// of it is derived purely from the dimension's master copy, so any
	// query interleaving here rebuilds consistently from either side of the
	// append.
	core.DropDimCached(s.mrEng.Cluster(), dir)
	s.eng.InvalidateTable(table)
	s.tableInvalidations.Add(int64(s.cache.invalidateDim(dir, s.mrEng.Cluster().Node)))
	s.dropEstimates(dir)
	s.finishRollIn(table, n)
	return n, nil
}

// finishRollIn is the tail shared by both roll-in paths: result-cache
// invalidation (after publish — see RollIn) and accounting.
func (s *Session) finishRollIn(table string, n int64) {
	if s.rcache != nil {
		s.rcache.invalidateTable(table)
	}
	s.rollIns.Add(1)
	s.rollInRows.Add(n)
	s.countIngest("roll_ins")
	if m := s.Metrics(); m != nil {
		m.Counter("serve.ingest.rows").Add(n)
	}
}

// dropEstimates forgets admission estimates derived from the dimension at
// dir (any generation).
func (s *Session) dropEstimates(dir string) {
	prefix := dir + "\x00"
	s.estMu.Lock()
	for k := range s.estimates {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(s.estimates, k)
		}
	}
	s.estMu.Unlock()
}

func (s *Session) countIngest(name string) {
	if m := s.Metrics(); m != nil {
		m.Counter("serve.ingest." + name).Inc()
	}
}

// CompactFact runs one compaction pass over the fact table: small roll-in
// partitions rewrite into full-size re-clustered ones with fresh zone
// maps, exchanged in one atomic swap (see colstore.Compact). The row
// multiset is unchanged, so no cached state needs invalidating — a racing
// query answers identically from either side of the swap.
func (s *Session) CompactFact(opts colstore.CompactOptions) (*colstore.CompactResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	res, err := colstore.Compact(s.eng.Snapshots(), s.cat.FactDir, opts)
	if err != nil {
		s.countIngest("compaction_failures")
		return nil, fmt.Errorf("serve: compact %s: %w", s.cat.FactName, err)
	}
	if len(res.Retired) > 0 {
		s.compactions.Add(1)
		s.compactedRows.Add(res.Rows)
		s.partsPublished.Add(int64(len(res.Published)))
		s.partsRetired.Add(int64(len(res.Retired)))
		s.countIngest("compactions")
	}
	return res, nil
}

// RetainFact applies date-range retention to the fact table: partitions
// whose zone maps prove every value of col is below cutoff retire in one
// atomic swap; partitions straddling the cutoff stay (retention never
// drops a row it cannot prove expired). Dropping rows changes answers, so
// cached results for the fact table are invalidated. Returns the retired
// partitions.
func (s *Session) RetainFact(col string, cutoff int64) ([]string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	retired, err := colstore.ExpireBefore(s.eng.Snapshots(), s.cat.FactDir, col, cutoff)
	if err != nil {
		return nil, fmt.Errorf("serve: retention %s: %w", s.cat.FactName, err)
	}
	if len(retired) > 0 {
		s.partsRetired.Add(int64(len(retired)))
		s.countIngest("retentions")
		if s.rcache != nil {
			s.rcache.invalidateTable(s.cat.FactName)
		}
	}
	return retired, nil
}

// StartCompactor runs CompactFact every interval until the returned stop
// function is called or the session closes. Pass errors surface on the
// "serve.ingest.compaction_failures" counter; one background compactor per
// session (a second call replaces the first).
func (s *Session) StartCompactor(interval time.Duration, opts colstore.CompactOptions) (stop func()) {
	quit := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(quit) }) }

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		stop()
		return stop
	}
	if prev := s.stopCompact; prev != nil {
		prev()
	}
	s.stopCompact = stop
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				// Close sets closed before signalling quit, so a tick racing
				// shutdown gets ErrClosed here rather than compacting into a
				// draining session.
				s.CompactFact(opts)
			}
		}
	}()
	return stop
}

// syncGauges refreshes scrape-time gauges for sources without inline update
// hooks (the table cache) and republishes the admission and result-cache
// levels so every scrape sees the full gauge set.
func (s *Session) syncGauges() {
	if m := s.Metrics(); m != nil {
		m.Gauge("serve.cache.resident_bytes").Set(s.cache.residentBytes())
	}
	s.adm.syncGauges()
	if s.rcache != nil {
		s.rcache.updateGauges()
	}
}

// finishTrace emits the root query span, claims the trace's spans from the
// collector, and records the assembled profile in the flight recorder. A
// no-op for untraced queries.
func (s *Session) finishTrace(sc obs.SpanContext, q *core.Query, start time.Time, qerr error, rep *core.Report) {
	if !sc.Valid() {
		return
	}
	if tr := s.mrEng.Tracer(); tr.Enabled() {
		status := "ok"
		if qerr != nil {
			status = "error"
		}
		root := obs.Span{Name: obs.PhaseQuery, Start: start, End: time.Now(),
			Attrs: obs.Attrs("query", q.Name, "status", status)}
		sc.Fill(&root, "")
		tr.Emit(root)
	}
	if s.collector == nil {
		return
	}
	spans, dropped := s.collector.Take(sc.Trace)
	var counters map[string]int64
	if rep != nil && rep.Job != nil && rep.Job.Counters != nil {
		counters = rep.Job.Counters.Snapshot()
	}
	p, err := obs.BuildProfile(spans, obs.ProfileOptions{
		Trace:    sc.Trace,
		Counters: counters,
		Dropped:  dropped,
	})
	if err != nil {
		return
	}
	s.recorder.Record(p)
	if m := s.Metrics(); m != nil && p.Orphans > 0 {
		m.Counter("serve.profile.orphan_spans").Add(int64(p.Orphans))
	}
}

// observeQueueWait surfaces the admission wait as a span (parented under
// the query's root) and a histogram sample on the engine's tracer/registry.
func (s *Session) observeQueueWait(sc obs.SpanContext, q *core.Query, start time.Time) {
	end := time.Now()
	if tr := s.mrEng.Tracer(); tr.Enabled() {
		span := obs.Span{
			Name:  obs.PhaseAdmissionWait,
			Start: start,
			End:   end,
			Attrs: obs.Attrs("query", q.Name),
		}
		sc.NewChild().Fill(&span, sc.Span)
		tr.Emit(span)
	}
	if m := s.mrEng.Metrics(); m != nil {
		m.Histogram("serve.admission_wait_ns").ObserveDuration(end.Sub(start))
	}
}

// admissionCost estimates the per-node bytes admitting the query adds: the
// exact build size of each dimension table not already resident on every
// live node (cached tables are free — that is the point of the cache),
// plus the configured task working memory. Estimates reuse
// core.EstimateDimHashBytes, which mirrors the build layout byte-for-byte,
// over a driver-side scan of the dimension master copy; each (dimDir,
// fingerprint) is estimated once per session.
func (s *Session) admissionCost(q *core.Query) (int64, error) {
	nodeIDs := s.aliveIDs()
	var missing []int // dim indices needing a fresh estimate
	keys := make([]string, len(q.Dims))
	dirs := make([]string, len(q.Dims))
	for i := range q.Dims {
		dir, err := s.cat.DimDir(q.Dims[i].Table)
		if err != nil {
			return 0, err
		}
		dirs[i] = dir
		keys[i] = s.cache.keyFor(dir, &q.Dims[i])
	}

	s.estMu.Lock()
	for i, k := range keys {
		if _, ok := s.estimates[k]; !ok {
			missing = append(missing, i)
		}
	}
	s.estMu.Unlock()

	if len(missing) > 0 {
		need := make(map[string]string, len(missing)) // table → dir
		for _, i := range missing {
			need[q.Dims[i].Table] = dirs[i]
		}
		per, err := core.EstimateDimHashBytes(q, func(table string, fn func(records.Record) error) error {
			dir, ok := need[table]
			if !ok {
				return nil // already estimated; contributes nothing here
			}
			return colstore.ScanRowTable(s.mrEng.FS(), dir, "", fn)
		})
		if err != nil {
			return 0, fmt.Errorf("serve: estimating %s tables: %w", q.Name, err)
		}
		s.estMu.Lock()
		for _, i := range missing {
			s.estimates[keys[i]] = per[i]
		}
		s.estMu.Unlock()
	}

	var cost int64
	s.estMu.Lock()
	for _, k := range keys {
		if s.cache.residentEverywhere(k, nodeIDs) {
			continue
		}
		cost += s.estimates[k]
	}
	s.estMu.Unlock()
	return cost + s.opts.TaskMemory, nil
}

func (s *Session) aliveIDs() []string {
	nodes := s.mrEng.Cluster().Alive()
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID()
	}
	return ids
}

// Stats snapshots the serving counters.
func (s *Session) Stats() Stats {
	running, queued, admitted, rejected, peak := s.adm.snapshot()
	st := Stats{
		Hits:           s.cache.hits.Load(),
		Misses:         s.cache.misses.Load(),
		Builds:         s.cache.builds.Load(),
		Evictions:      s.cache.evictions.Load(),
		ResidentBytes:  s.cache.residentBytes(),
		Admitted:       admitted,
		Rejected:       rejected,
		Running:        running,
		Queued:         queued,
		PeakConcurrent: peak,
	}
	if s.rcache != nil {
		st.ResultHits = s.rcache.hits.Load()
		st.ResultSubsumedHits = s.rcache.subsumedHits.Load()
		st.ResultMisses = s.rcache.misses.Load()
		st.ResultEvictions = s.rcache.evictions.Load()
		st.ResultInvalidations = s.rcache.invalidations.Load()
		st.ResultBytes = s.rcache.residentBytes()
	}
	st.RollIns = s.rollIns.Load()
	st.RollInRows = s.rollInRows.Load()
	st.RollInFailures = s.rollInFailures.Load()
	st.Compactions = s.compactions.Load()
	st.CompactedRows = s.compactedRows.Load()
	st.PartitionsPublished = s.partsPublished.Load()
	st.PartitionsRetired = s.partsRetired.Load()
	st.TableInvalidations = s.tableInvalidations.Load()
	return st
}

// Close drains in-flight queries, evicts every cached table (returning its
// node memory reservation), drops every cached result, and fails all future
// Query calls with ErrClosed. Safe to call more than once.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stopCompact := s.stopCompact
	s.mu.Unlock()
	if stopCompact != nil {
		// Stop the background compactor before draining: its goroutine is
		// counted in wg, so waiting while it still ticks would deadlock.
		stopCompact()
	}
	s.wg.Wait()
	if s.unwatch != nil {
		s.unwatch()
	}
	cl := s.mrEng.Cluster()
	s.cache.evictAll(cl.Node)
	if s.rcache != nil {
		s.rcache.evictAll()
	}
	return nil
}
