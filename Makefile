# Standard developer checks. `make check` is the gate used before sending
# changes: vet, a full build, and the test suite under the race detector.

GO ?= go

.PHONY: check vet build test race bench clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
