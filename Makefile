# Standard developer checks. `make check` (the default goal) is the gate
# used before sending changes: formatting, vet, a full build, and the
# concurrency-heavy packages (serve, core, mr) under the race detector.

GO ?= go

.PHONY: check fmt vet build test race race-concurrency chaos plan-golden bench bench-smoke profile-smoke serve-bench serve-smoke ingest-smoke clean

check: fmt vet build race-concurrency chaos plan-golden ingest-smoke

# Fail if any file is not gofmt-clean, listing the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The serving layer, engine and MapReduce runtime are where the shared
# mutable state lives (table cache, admission queue, scheduler); their tests
# run under -race on every check. colstore rides along so the scan-path
# property tests (encoding round-trips, zone-map oracle, v1 format compat)
# run race-checked too.
race-concurrency:
	$(GO) test -race ./internal/serve/... ./internal/core/... ./internal/mr/... ./internal/colstore/...

# Fault-injection suite (see DESIGN.md "Fault tolerance"): every SSB query
# under node kills, stragglers, transient read errors and corrupted
# replicas must match the healthy answer, race-checked because recovery is
# where scheduler, namenode and cache state interleave.
chaos:
	$(GO) test -race ./internal/chaos/... ./internal/hdfs/... ./internal/cluster/...

# Planner gate (see DESIGN.md "Planner"): the golden plan texts for all 13
# SSB queries (regenerate with `go test ./internal/plan -run GoldenPlans
# -update`), the snowflake property suite holding every lowering — star,
# staged, cascade, and both Hive strategies — to the logical-plan oracle,
# and the cascade's zero-intermediate-reduce span check, all under -race.
plan-golden:
	$(GO) test -race ./internal/plan/...

# Probe-path regression guard (see DESIGN.md "Probe hot path"): the table
# probe/build microbenchmarks and the per-row emit benchmark, with allocation
# counts. The gomap/boxed variants are the pre-change layouts kept in-tree as
# the comparison baseline — open vs gomap and inmapper/scratch vs boxed are
# the ratios to watch. CI-friendly: short benchtime, no external state.
bench:
	$(GO) test -run '^$$' -bench 'Probe|HashBuild|Aggregate|CIFScan' -benchmem -benchtime 0.2s ./internal/core/ ./internal/colstore/ .

# One-iteration smoke run of every benchmark in the repo, then the row
# accounting gate: on all 13 SSB queries, every fact row must be attributed
# to exactly one of probed / late-skipped / bloom-skipped / pruned
# (TestAllQueriesMatchReference enforces the invariant and the reference
# answers).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run 'TestAllQueriesMatchReference' -count=1 ./internal/core/

# EXPLAIN ANALYZE invariant gate (see DESIGN.md "Observability"): run Q1.1
# with profiling on and fail unless the per-phase exclusive walls sum to the
# query's wall clock, the span tree is rooted at a query span, and nothing
# was orphaned or dropped. -explain-check exits non-zero on violation.
profile-smoke:
	@out="$$($(GO) run ./cmd/clydesdale -query Q1.1 -factrows 20000 -explain -explain-check)" || \
		{ echo "$$out"; exit 1; }; echo "$$out" | grep 'explain-check'

# Serving benchmark (see EXPERIMENTS.md "Serving at scale"): replay one
# seed-deterministic open-loop tenant mix under FIFO, weighted fair-share,
# and fair-share + result cache, writing per-class latency/SLO/shed numbers
# and the cache cold/warm measurement to BENCH_serve.json.
serve-bench:
	$(GO) run ./cmd/loadgen -out BENCH_serve.json

# CI gate for the serving path: a short load run must complete queries in
# every pass without shedding its whole offered load, and the warm
# result-cache pass must submit zero MapReduce jobs (counter-verified).
serve-smoke:
	$(GO) run ./cmd/loadgen -duration 5s -rate 40 -fact-rows 60000 -check -out ''

# CI gate for live ingestion (see DESIGN.md "Live ingestion"): batched fact
# roll-ins racing queries, the background compactor, a dimension roll-in and
# date retention; after every step a query must answer exactly like the
# in-memory reference over the rows acknowledged so far, and the final table
# must hold every acknowledged row. The run is its own check — any torn
# snapshot, stale cache or lost row exits non-zero.
ingest-smoke:
	$(GO) run ./cmd/loadgen -ingest -out ''

clean:
	$(GO) clean ./...
