# Standard developer checks. `make check` is the gate used before sending
# changes: vet, a full build, and the test suite under the race detector.

GO ?= go

.PHONY: check vet build test race bench bench-smoke clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Probe-path regression guard (see DESIGN.md "Probe hot path"): the table
# probe/build microbenchmarks and the per-row emit benchmark, with allocation
# counts. The gomap/boxed variants are the pre-change layouts kept in-tree as
# the comparison baseline — open vs gomap and inmapper/scratch vs boxed are
# the ratios to watch. CI-friendly: short benchtime, no external state.
bench:
	$(GO) test -run '^$$' -bench 'Probe|HashBuild|Aggregate' -benchmem -benchtime 0.2s ./internal/core/ .

# One-iteration smoke run of every benchmark in the repo.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
